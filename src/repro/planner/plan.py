"""The :class:`ExecutionPlan`: one object owning every execution knob.

Before the planner existed the repo had four independent execution knobs —
routing backend (PR 2), shard placement (PR 3), compute kernel and
thread/process parallelism (PR 4) — each chosen ad hoc by whoever called the
serving layer.  An :class:`ExecutionPlan` collapses them into one immutable,
hashable-by-content decision record that the service, the cluster tier, and
the benchmarks all consume:

* **semantic fields** — ``backend`` + ``backend_params`` determine *what* is
  computed (delivered tokens, rounds, load); they feed the artifact-cache
  fingerprint and :attr:`semantic_id`, which is what
  :meth:`~repro.service.BatchReport.signature` records (so signatures stay
  byte-identical across thread/process execution of the same plan);
* **physical fields** — ``kernel``, ``parallelism``, ``max_workers``,
  ``chunk_size`` determine *how fast* it is computed; results are identical
  by construction (the kernels are equivalence-tested), only wall-clock
  changes;
* **placement** — ``shard_hint`` annotates which shard the cluster
  coordinator assigned; it is excluded from :attr:`plan_id` so the same
  decision keeps one identity wherever it lands.

Plans are produced by :class:`~repro.planner.QueryPlanner` (policies
``fixed`` / ``cost`` / ``adaptive``) or synthesized from legacy kwargs by the
compatibility shims in :class:`~repro.service.RoutingService`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.backends.base import canonical_backend_params

__all__ = ["EXECUTION_MODES", "ARTIFACT_TRANSPORTS", "ExecutionPlan"]

#: The execution modes a plan may select for batch fan-out.
EXECUTION_MODES = ("threads", "processes")

#: How a preprocessed artifact reaches process-pool workers.
ARTIFACT_TRANSPORTS = ("pickle", "shm")


@dataclass(frozen=True)
class ExecutionPlan:
    """One unified execution decision for a routing query (or batch slice).

    Attributes:
        backend: registry name of the routing backend to execute through.
        backend_params: extra backend factory parameters (stored as given;
            canonicalized for identity hashing).
        kernel: compute kernel recorded for this plan (``reference`` or
            ``numpy``).  Kernel selection is process-global
            (:mod:`repro.kernels`); the plan records the kernel in effect at
            planning time and worker-process tasks are pinned to it.
        parallelism: batch fan-out mode, ``"threads"`` or ``"processes"``.
        max_workers: intended pool width for the fan-out (``None`` =
            executor default).  Consumed where services are *built* — the
            cluster sizes each shard service from its ``default_plan`` —
            and advisory on per-query plans: an existing service keeps one
            long-lived pool per mode sized by its own ``max_workers``.
        chunk_size: how many same-fingerprint queries one thread-pool task
            routes (``None``/1 = one task per query; larger values amortize
            task overhead for sub-millisecond queries).
        fused: route same-fingerprint query groups through the backend's
            fused batch kernel (``route_many``) when it has one.  Physical:
            fused results are identical to sequential by construction
            (``BatchReport.signature()`` parity), only wall-clock changes.
        artifact_transport: how the artifact reaches process workers —
            ``"pickle"`` (spill directory) or ``"shm"`` (zero-copy
            shared-memory segments, see :mod:`repro.service.shm`).  Physical;
            ignored by thread-mode slices, and the service falls back to the
            spill path whenever shared memory is unavailable.
        shard_hint: the cluster shard the coordinator placed this plan on
            (``None`` outside the cluster tier; excluded from identity).
        policy: which planner policy produced the plan (``fixed`` plans come
            from explicit kwargs, ``cost``/``adaptive`` from the cost model).
        reason: one human-readable sentence on why this plan was chosen
            (deterministic given the same planner state; excluded from
            identity).
    """

    backend: str
    backend_params: Mapping[str, Any] = field(default_factory=dict)
    kernel: str = "numpy"
    parallelism: str = "threads"
    max_workers: int | None = None
    chunk_size: int | None = None
    fused: bool = False
    artifact_transport: str = "pickle"
    shard_hint: str | None = None
    policy: str = "fixed"
    reason: str = ""

    def __post_init__(self) -> None:
        if self.parallelism not in EXECUTION_MODES:
            raise ValueError(
                f"unknown parallelism {self.parallelism!r}; "
                f"expected one of {', '.join(EXECUTION_MODES)}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be at least 1 (or None)")
        if self.artifact_transport not in ARTIFACT_TRANSPORTS:
            raise ValueError(
                f"unknown artifact_transport {self.artifact_transport!r}; "
                f"expected one of {', '.join(ARTIFACT_TRANSPORTS)}"
            )

    # -- identities ----------------------------------------------------------

    @property
    def canonical_params(self) -> tuple[tuple[str, str], ...]:
        """The backend parameters as a deterministic (key, repr) tuple."""
        return canonical_backend_params(self.backend_params)

    @property
    def semantic_id(self) -> str:
        """Hash of the *result-affecting* fields only (backend + params).

        Two plans with the same semantic id produce byte-identical routing
        outcomes (deliveries, rounds, loads) regardless of kernel, pool mode,
        or chunking — this is the identity batch signatures record.
        """
        payload = json.dumps(
            {"backend": self.backend, "params": self.canonical_params},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def plan_id(self) -> str:
        """Hash of the full decision (semantic + physical, no placement)."""
        payload = json.dumps(
            {
                "backend": self.backend,
                "params": self.canonical_params,
                "kernel": self.kernel,
                "parallelism": self.parallelism,
                "max_workers": self.max_workers,
                "chunk_size": self.chunk_size,
                "fused": self.fused,
                "artifact_transport": self.artifact_transport,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    # -- derived views -------------------------------------------------------

    @property
    def effective_chunk_size(self) -> int:
        return self.chunk_size or 1

    def with_shard(self, shard_id: str) -> "ExecutionPlan":
        """The same decision annotated with its placement (identity unchanged)."""
        return replace(self, shard_hint=shard_id)

    def to_dict(self) -> dict[str, object]:
        """The plan as a JSON-friendly dict (canonical params, both ids)."""
        return {
            "backend": self.backend,
            "backend_params": [list(pair) for pair in self.canonical_params],
            "kernel": self.kernel,
            "parallelism": self.parallelism,
            "max_workers": self.max_workers,
            "chunk_size": self.chunk_size,
            "fused": self.fused,
            "artifact_transport": self.artifact_transport,
            "shard_hint": self.shard_hint,
            "policy": self.policy,
            "reason": self.reason,
            "plan_id": self.plan_id,
            "semantic_id": self.semantic_id,
        }

    def canonical_json(self) -> str:
        """Byte-stable serialisation (what the determinism tests compare)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def describe(self) -> str:
        """One-line rendering for reports and EXPLAIN output."""
        bits = [f"backend={self.backend}"]
        if self.canonical_params:
            bits.append(
                "params={" + ",".join(f"{k}={v}" for k, v in self.canonical_params) + "}"
            )
        bits.append(f"kernel={self.kernel}")
        bits.append(f"parallelism={self.parallelism}")
        if self.max_workers is not None:
            bits.append(f"max_workers={self.max_workers}")
        if self.effective_chunk_size != 1:
            bits.append(f"chunk={self.effective_chunk_size}")
        if self.fused:
            bits.append("fused")
        if self.artifact_transport != "pickle":
            bits.append(f"transport={self.artifact_transport}")
        if self.shard_hint is not None:
            bits.append(f"shard={self.shard_hint}")
        bits.append(f"policy={self.policy}")
        return " ".join(bits)
