"""The query planner: policies, plan cache, and EXPLAIN-style reports.

:class:`QueryPlanner` is the single decision point the serving layers route
execution choices through.  Given a graph key (canonical fingerprint of the
graph + service parameters, backend-agnostic), a workload signature, and the
current :class:`~repro.planner.CostModel` state, it produces an
:class:`~repro.planner.ExecutionPlan` under one of three policies:

* ``fixed`` — honor the caller's explicit knobs (the compatibility shims in
  :class:`~repro.service.RoutingService` synthesize these from legacy
  kwargs); the cost model is consulted for reporting only.
* ``cost`` — pick the candidate backend with the lowest effective cost
  estimate (calibrated EWMA when available, asymptotic prior otherwise);
  purely deterministic given the model state.
* ``adaptive`` — like ``cost``, but un-calibrated candidates are probed
  first (in sorted name order) so every candidate gets measured, and the
  serving layer feeds observed timings back via :meth:`record_query` /
  :meth:`record_preprocess`; the policy converges to the measured winner per
  (backend, kernel, graph-size-bucket).

Decisions are memoized in a bounded plan cache keyed by
``(graph key, workload signature, explicit backend override, cost-model
version)`` — the same key reproduces the byte-identical plan *and* the
byte-identical :meth:`PlanExplanation.render` output, which is exactly what
the planner determinism tests assert.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.analysis.reporting import format_kv, format_table
from repro.backends.base import available_backends, backend_factory, supports_fusion
from repro.kernels import active_kernel
from repro.metrics import MetricsRegistry, default_registry
from repro.planner.cost import CostEstimate, CostModel, size_bucket
from repro.planner.plan import EXECUTION_MODES, ExecutionPlan

__all__ = ["PLAN_POLICIES", "workload_signature", "PlanExplanation", "QueryPlanner"]

#: The recognised planning policies.
PLAN_POLICIES = ("fixed", "cost", "adaptive")

#: Calibrated per-query cost below which thread fan-out is chunked (task
#: submission overhead dominates sub-millisecond queries).
CHUNK_THRESHOLD_SECONDS = 2e-3

#: Calibrated per-query cost above which ``parallelism="auto"`` ships the
#: batch to worker processes (below it, pickling dominates the win).
PROCESS_THRESHOLD_SECONDS = 5e-3


def workload_signature(
    workload: str, load: int | None, request_count: int, n: int
) -> str:
    """The workload-shape key of the plan cache.

    Buckets request counts and graph sizes by bit length (like the cost
    model), so "the same shape of traffic at the same scale" shares one plan
    instead of fragmenting the cache per exact size.
    """
    return "|".join(
        (
            workload or "adhoc",
            f"L{load if load is not None else '?'}",
            f"r{max(int(request_count), 1).bit_length()}",
            f"n{size_bucket(n)}",
        )
    )


@dataclass
class PlanExplanation:
    """Why one plan was chosen: candidate scores, policy, and provenance.

    Everything here is deterministic given (graph key, workload signature,
    calibration state) — no wall-clock, no iteration-order dependence — so
    :meth:`render` is byte-stable and safe to snapshot in tests.
    """

    graph_key: str
    signature: str
    policy: str
    plan: ExecutionPlan
    estimates: list[CostEstimate] = field(default_factory=list)
    cost_model_version: int = 0
    cost_model_signature: str = ""
    notes: list[str] = field(default_factory=list)

    def as_rows(self) -> list[dict[str, object]]:
        rows = []
        for estimate in self.estimates:
            row = estimate.as_row()
            row["chosen"] = "*" if estimate.backend == self.plan.backend else ""
            rows.append(row)
        return rows

    def summary(self) -> dict[str, object]:
        return {
            "graph": self.graph_key[:10],
            "workload": self.signature,
            "policy": self.policy,
            "plan_id": self.plan.plan_id,
            "semantic_id": self.plan.semantic_id,
            "plan": self.plan.describe(),
            "reason": self.plan.reason,
            "cost_model_version": self.cost_model_version,
            "cost_model_state": self.cost_model_signature,
        }

    def render(self) -> str:
        """The EXPLAIN report as aligned plain text (byte-stable)."""
        parts = [format_kv(self.summary(), title="plan")]
        if self.estimates:
            parts.append(format_table(self.as_rows()))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)


class QueryPlanner:
    """Chooses an :class:`ExecutionPlan` per (graph, workload) under a policy.

    Args:
        policy: ``fixed`` | ``cost`` | ``adaptive`` (see module docstring).
        cost_model: the :class:`CostModel` to estimate and calibrate with
            (fresh one when omitted; the cluster tier shares one across
            shards).
        candidates: backend names the ``cost``/``adaptive`` policies choose
            among (default: every registered backend).
        default_backend: the backend ``fixed`` plans fall back to when the
            caller names none.
        epsilon: tradeoff parameter recorded for the cost model default.
        parallelism: execution mode planned batches run under — one of
            ``"threads"``, ``"processes"``, or ``"auto"`` (processes exactly
            when the calibrated per-query cost clears
            ``PROCESS_THRESHOLD_SECONDS`` and the machine has >1 core).
        max_workers: pool width stamped onto every plan (``None`` = default).
        chunk_size: thread fan-out chunk applied when the calibrated
            per-query cost is below ``CHUNK_THRESHOLD_SECONDS``.
        plan_cache_capacity: bound on memoized decisions (LRU).
        replan_interval: how many cost-model observations a *converged*
            decision stays cached for before it is re-derived (exploration
            decisions are never reused across observations, so probing
            advances every batch).  Re-planning on every observation would
            spend more time deciding than routing for sub-millisecond
            queries; an interval of 64 keeps decisions fresh across a few
            batches while amortizing the decision cost to noise.
        explore_probes: observations the adaptive policy wants per
            (backend, workload-class, size-bucket) before it trusts the
            calibration — 2 by default, because the first measurement after
            a cold start is provisional (see
            :meth:`~repro.planner.CostModel.observe`).
        metrics: registry for ``repro_planner_*`` series (default process
            registry).
    """

    def __init__(
        self,
        policy: str = "cost",
        cost_model: CostModel | None = None,
        candidates: Sequence[str] | None = None,
        default_backend: str = "deterministic",
        epsilon: float = 0.5,
        parallelism: str = "threads",
        max_workers: int | None = None,
        chunk_size: int = 4,
        plan_cache_capacity: int = 1024,
        replan_interval: int = 64,
        explore_probes: int = 2,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if policy not in PLAN_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; expected one of {', '.join(PLAN_POLICIES)}"
            )
        if parallelism not in (*EXECUTION_MODES, "auto"):
            raise ValueError(
                f"unknown parallelism {parallelism!r}; expected "
                f"{', '.join(EXECUTION_MODES)} or 'auto'"
            )
        if plan_cache_capacity < 1:
            raise ValueError("plan_cache_capacity must be at least 1")
        if replan_interval < 1:
            raise ValueError("replan_interval must be at least 1")
        self.policy = policy
        self.cost_model = cost_model if cost_model is not None else CostModel(epsilon=epsilon)
        self._candidates = tuple(sorted(candidates)) if candidates is not None else None
        self.default_backend = default_backend
        self.parallelism = parallelism
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.plan_cache_capacity = plan_cache_capacity
        self.replan_interval = replan_interval
        self.explore_probes = max(1, explore_probes)
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_plans = self.metrics.counter(
            "repro_planner_plans_total",
            "Plans produced, by policy and chosen backend.",
            labels=("policy", "backend"),
        )
        self._m_cache = self.metrics.counter(
            "repro_planner_plan_cache_total",
            "Plan cache lookups by result.",
            labels=("result",),
        )
        # key -> (plan, explanation, decided-at-version, is-exploration)
        self._cache: OrderedDict[
            tuple, tuple[ExecutionPlan, PlanExplanation, int, bool]
        ] = OrderedDict()

    # -- candidates ----------------------------------------------------------

    @property
    def candidates(self) -> tuple[str, ...]:
        """Backends the cost/adaptive policies choose among (sorted)."""
        if self._candidates is not None:
            return self._candidates
        return tuple(available_backends())

    # -- planning ------------------------------------------------------------

    def plan(
        self,
        graph_key: str,
        n: int,
        *,
        request_count: int = 0,
        load: int | None = None,
        workload: str = "",
        backend: str | None = None,
        backend_params: Mapping[str, Any] | None = None,
    ) -> ExecutionPlan:
        """The execution plan for one query (memoized; see module docstring).

        An explicit ``backend`` always wins: naming one is a ``fixed``
        decision regardless of the planner's policy (this is what the legacy
        kwargs shims rely on).
        """
        return self._decide(
            graph_key, n, request_count, load, workload, backend, backend_params
        )[0]

    def explain(
        self,
        graph_key: str,
        n: int,
        *,
        request_count: int = 0,
        load: int | None = None,
        workload: str = "",
        backend: str | None = None,
        backend_params: Mapping[str, Any] | None = None,
    ) -> PlanExplanation:
        """The full decision report for the same inputs as :meth:`plan`."""
        return self._decide(
            graph_key, n, request_count, load, workload, backend, backend_params
        )[1]

    def _decide(
        self,
        graph_key: str,
        n: int,
        request_count: int,
        load: int | None,
        workload: str,
        backend: str | None,
        backend_params: Mapping[str, Any] | None,
    ) -> tuple[ExecutionPlan, PlanExplanation]:
        signature = workload_signature(workload, load, request_count, n)
        params_key = tuple(sorted((str(k), repr(v)) for k, v in (backend_params or {}).items()))
        # The active kernel is part of the key: flipping REPRO_KERNEL (or the
        # kernel() context manager) must re-derive plans, both so the plan's
        # recorded kernel pins worker processes correctly and so calibration
        # observations file under the kernel that actually ran.
        kernel = active_kernel()
        key = (graph_key, signature, backend, params_key, kernel)
        version = self.cost_model.version
        cached = self._cache.get(key)
        if cached is not None:
            plan, explanation, decided_at, exploring = cached
            fresh = version == decided_at or (
                not exploring and version - decided_at < self.replan_interval
            )
            if fresh:
                self._cache.move_to_end(key)
                self._m_cache.labels(result="hit").inc()
                return plan, explanation
        self._m_cache.labels(result="miss").inc()
        plan, explanation = self._decide_uncached(
            graph_key, n, request_count, load, workload, signature, backend,
            backend_params, kernel,
        )
        self._cache[key] = (plan, explanation, version, plan.reason.startswith("exploring"))
        while len(self._cache) > self.plan_cache_capacity:
            self._cache.popitem(last=False)
        self._m_plans.labels(policy=plan.policy, backend=plan.backend).inc()
        return plan, explanation

    def _decide_uncached(
        self,
        graph_key: str,
        n: int,
        request_count: int,
        load: int | None,
        workload: str,
        signature: str,
        backend: str | None,
        backend_params: Mapping[str, Any] | None,
        kernel: str,
    ) -> tuple[ExecutionPlan, PlanExplanation]:
        effective_load = max(load or 1, 1)
        estimates = [
            self.cost_model.estimate(
                name, kernel, n, phase="query", load=effective_load, workload=workload
            )
            for name in self.candidates
        ]
        notes: list[str] = []

        if backend is not None or self.policy == "fixed":
            chosen_name = backend if backend is not None else self.default_backend
            policy = "fixed"
            reason = (
                f"caller pinned backend={chosen_name}"
                if backend is not None
                else f"fixed policy default backend={chosen_name}"
            )
        else:
            policy = self.policy
            unexplored = [
                e for e in estimates if e.workload_samples < self.explore_probes
            ]
            if self.policy == "adaptive" and unexplored:
                chosen = min(unexplored, key=lambda e: e.backend)
                reason = (
                    f"exploring backend={chosen.backend} un-calibrated for "
                    f"workload={workload or 'adhoc'} (bucket n~2^{chosen.bucket})"
                )
                notes.append(
                    f"{len(unexplored)} of {len(estimates)} candidates un-calibrated "
                    "for this workload class; probing in name order"
                )
            else:
                chosen = min(estimates, key=lambda e: (e.cost, e.backend))
                ranked = sorted(estimates, key=lambda e: (e.cost, e.backend))
                runner_up = ranked[1] if len(ranked) > 1 else None
                reason = f"lowest {chosen.source} cost {chosen.cost:.3e}s"
                if runner_up is not None:
                    reason += f" (runner-up {runner_up.backend} at {runner_up.cost:.3e}s)"
            chosen_name = chosen.backend

        chosen_estimate = next(
            (e for e in estimates if e.backend == chosen_name),
            self.cost_model.estimate(
                chosen_name, kernel, n, phase="query", load=effective_load, workload=workload
            ),
        )
        parallelism = self._pick_parallelism(chosen_estimate, notes)
        chunk = self._pick_chunk(chosen_estimate, notes)
        fused = self._pick_fused(chosen_name, notes)
        transport = self._pick_transport(parallelism, notes)
        plan = ExecutionPlan(
            backend=chosen_name,
            backend_params=dict(backend_params or {}),
            kernel=kernel,
            parallelism=parallelism,
            max_workers=self.max_workers,
            chunk_size=chunk,
            fused=fused,
            artifact_transport=transport,
            policy=policy,
            reason=reason,
        )
        explanation = PlanExplanation(
            graph_key=graph_key,
            signature=signature,
            policy=policy,
            plan=plan,
            estimates=sorted(estimates, key=lambda e: (e.cost, e.backend)),
            cost_model_version=self.cost_model.version,
            cost_model_signature=self.cost_model.state_signature(),
            notes=notes,
        )
        return plan, explanation

    def _pick_parallelism(self, estimate: CostEstimate, notes: list[str]) -> str:
        if self.parallelism in EXECUTION_MODES:
            return self.parallelism
        # "auto": worker processes only pay off when each query carries real
        # compute and the machine has real cores.
        cores = os.cpu_count() or 1
        if (
            cores > 1
            and estimate.calibrated is not None
            and estimate.calibrated >= PROCESS_THRESHOLD_SECONDS
        ):
            notes.append(
                f"auto parallelism: calibrated {estimate.calibrated:.3e}s/query "
                f">= {PROCESS_THRESHOLD_SECONDS:.0e}s on {cores} cores -> processes"
            )
            return "processes"
        return "threads"

    def _pick_fused(self, backend: str, notes: list[str]) -> bool:
        """Fuse same-fingerprint batches whenever the backend has a batch kernel.

        Fused results are identical to sequential by construction, so the
        only cost of enabling fusion is nothing at batch size 1 (the service
        fuses groups of >= 2 only) — there is no tradeoff to model.
        """
        try:
            capable = supports_fusion(backend_factory(backend))
        except ValueError:
            capable = False
        if capable:
            notes.append(
                f"backend {backend} exposes route_many -> fused batch kernels enabled"
            )
        return capable

    def _pick_transport(self, parallelism: str, notes: list[str]) -> str:
        """Ship artifacts to process workers over shared memory when available."""
        if parallelism != "processes":
            return "pickle"
        try:
            from repro.service.shm import shm_enabled
        except ImportError:  # pragma: no cover - shm module always ships
            return "pickle"
        if shm_enabled():
            notes.append("process workers attach artifacts over shared memory")
            return "shm"
        return "pickle"

    def _pick_chunk(self, estimate: CostEstimate, notes: list[str]) -> int | None:
        if (
            self.chunk_size > 1
            and estimate.calibrated is not None
            and estimate.calibrated < CHUNK_THRESHOLD_SECONDS
        ):
            notes.append(
                f"chunking thread fan-out x{self.chunk_size}: calibrated "
                f"{estimate.calibrated:.3e}s/query < {CHUNK_THRESHOLD_SECONDS:.0e}s"
            )
            return self.chunk_size
        return None

    # -- feedback ------------------------------------------------------------

    def record_query(
        self, plan: ExecutionPlan, n: int, seconds: float, workload: str = ""
    ) -> None:
        """Fold one observed per-query wall-clock back into the cost model."""
        self.cost_model.observe_query(
            plan.backend, plan.kernel, n, seconds, workload=workload
        )

    def record_fused_query(
        self, plan: ExecutionPlan, n: int, seconds: float, workload: str = ""
    ) -> None:
        """Fold one fused-batch per-query wall-clock into the fused curve."""
        self.cost_model.observe_fused_query(
            plan.backend, plan.kernel, n, seconds, workload=workload
        )

    def record_preprocess(self, plan: ExecutionPlan, n: int, seconds: float) -> None:
        """Fold one observed preprocess wall-clock back into the cost model."""
        self.cost_model.observe_preprocess(plan.backend, plan.kernel, n, seconds)

    # -- introspection -------------------------------------------------------

    @property
    def plan_cache_size(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        self._cache.clear()
