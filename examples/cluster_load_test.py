"""Cluster serving tour: sharded coordinator under seeded open-loop load.

The serving story at cluster scale, end to end:

1. a 4-shard :class:`~repro.cluster.ClusterCoordinator` places every graph
   fingerprint on a shard via consistent hashing, so each shard's artifact
   cache owns its partition of the working set;
2. a seeded Poisson :class:`~repro.cluster.OpenLoopLoadGenerator` drives it
   and reports SLOs — throughput, p50/p95/p99 latency, drop rate, per-shard
   cache hit rates;
3. a warm repeat of the same traffic incurs **zero** new preprocessing
   rounds for the deterministic backend — the paper's amortization, cluster
   wide;
4. bounded admission queues shed predictably under a saturating burst;
5. adding a shard rebalances only the expected fraction of fingerprints,
   and everything is visible in the metrics exposition.

Run with ``PYTHONPATH=src python examples/cluster_load_test.py`` (or after
``pip install -e .``).
"""

from repro.cluster import ClusterCoordinator, OpenLoopLoadGenerator
from repro.graphs.generators import random_regular_expander
from repro.metrics import MetricsRegistry
from repro.planner import ExecutionPlan


def main() -> None:
    graphs = [random_regular_expander(64, degree=8, seed=seed) for seed in range(8)]
    metrics = MetricsRegistry()
    plan = ExecutionPlan(backend="deterministic", max_workers=2)
    coordinator = ClusterCoordinator(
        shard_count=4, cache_capacity=8, default_plan=plan, metrics=metrics
    )

    print("== cold run: seeded Poisson arrivals against 4 shards ==")
    generator = OpenLoopLoadGenerator(
        graphs, rate=150.0, duration=0.6, dispatch_interval=0.1, seed=7
    )
    cold = generator.run(coordinator)
    print(cold.render())

    print("\n== warm repeat: identical traffic, zero new preprocessing ==")
    warm = OpenLoopLoadGenerator(
        graphs, rate=150.0, duration=0.6, dispatch_interval=0.1, seed=7
    ).run(coordinator)
    print(warm.render())
    assert warm.preprocess_rounds_incurred == 0, "warm repeat must reuse every artifact"
    print("warm-repeat preprocess rounds incurred:", warm.preprocess_rounds_incurred)

    print("\n== overload: a saturating burst against bounded queues ==")
    bounded = ClusterCoordinator(
        shard_count=2,
        cache_capacity=8,
        queue_capacity=4,
        admission_policy="shed-oldest",
        default_plan=plan,
        metrics=MetricsRegistry(),
    )
    burst = OpenLoopLoadGenerator(
        graphs[:2],
        rate=600.0,
        duration=0.3,
        arrival="bursty",
        burst_factor=4.0,
        dispatch_interval=0.15,
        seed=11,
    ).run(bounded)
    print(burst.render())
    print(f"shed {burst.shed} of {burst.offered} offered ({burst.drop_rate:.0%} drop rate)")

    print("\n== scale-out: adding a shard moves ~1/5 of the fingerprints ==")
    stats = coordinator.add_shard()
    print(
        f"moved {stats.moved}/{stats.total} known fingerprints "
        f"({stats.moved_fraction:.0%}; expected ~{stats.expected_fraction:.0%})"
    )

    print("\n== metrics exposition (excerpt) ==")
    excerpt = [
        line
        for line in metrics.render_text().splitlines()
        if line.startswith(("repro_cluster_queries_total", "repro_cache_lookups_total"))
        or "repro_cluster_dispatch_seconds_count" in line
        or "repro_service_query_seconds_count" in line
    ]
    print("\n".join(excerpt))


if __name__ == "__main__":
    main()
