"""Corollary 1.4: deterministic k-clique enumeration in general graphs.

Decomposes a general graph into expander components, lists every triangle and
4-clique, verifies against brute force, and reports the round accounting.

Run with:  python examples/triangle_enumeration.py
"""

from repro.analysis import print_table
from repro.applications import brute_force_cliques, enumerate_cliques
from repro.graphs import planted_clique_graph, two_expander_graph


def main() -> None:
    rows = []
    workloads = [
        ("planted-clique", planted_clique_graph(96, clique_size=6, p=0.06, seed=3)),
        ("two-expanders", two_expander_graph(96, bridge_edges=3, degree=6, seed=4)),
    ]
    for name, graph in workloads:
        for k in (3, 4):
            listed = enumerate_cliques(graph, k=k)
            expected = brute_force_cliques(graph, k)
            rows.append(
                {
                    "workload": name,
                    "k": k,
                    "cliques_found": len(listed.cliques),
                    "matches_brute_force": set(listed.cliques) == set(expected),
                    "expander_components": listed.components,
                    "crossing_edges": listed.crossing_edges,
                    "rounds": listed.rounds,
                }
            )
    print("Deterministic k-clique enumeration (Corollary 1.4)")
    print_table(rows)


if __name__ == "__main__":
    main()
