"""EXPLAIN-style query planning on a 4-shard cluster.

The planner tour, end to end:

1. a 4-shard :class:`~repro.cluster.ClusterCoordinator` with
   ``policy="adaptive"`` plans every query centrally — backend, kernel,
   parallelism, chunking, and the shard placement hint all land in one
   :class:`~repro.planner.ExecutionPlan` shipped with the query;
2. the adaptive policy first *explores* (every candidate backend is probed
   per workload class), feeding observed timings into one cluster-wide
   :class:`~repro.planner.CostModel`;
3. once calibrated, :meth:`ClusterCoordinator.explain` renders the decision
   like a database EXPLAIN: the candidate cost table (asymptotic priors vs
   EWMA calibration), the chosen plan, and the reason;
4. the dispatch report shows which plans actually served traffic
   (``plan_counts`` / ``backend_counts``) — the four knobs are now one
   observable decision point.

Run with ``PYTHONPATH=src python examples/planner_explain.py`` (or after
``pip install -e .``).
"""

from repro.backends import available_backends
from repro.cluster import ClusterCoordinator
from repro.graphs.generators import random_regular_expander
from repro.metrics import MetricsRegistry
from repro.workloads import make_workload


def main() -> None:
    graph = random_regular_expander(64, degree=8, seed=11)
    workloads = [
        make_workload("permutation", graph, shift=3),
        make_workload("hotspot", graph, load=2, seed=1),
        make_workload("broadcast", graph, fanout=8),
        make_workload("adversarial-bipartite", graph, seed=2),
    ]
    metrics = MetricsRegistry()

    with ClusterCoordinator(
        shard_count=4, cache_capacity=8, policy="adaptive", metrics=metrics
    ) as coordinator:
        print("== un-calibrated: the asymptotic priors decide ==")
        print(coordinator.explain(graph, workloads[0]).render())

        print("\n== calibration: the adaptive policy probes every backend ==")
        probes = 2 * len(available_backends()) + 1
        for _ in range(probes):
            for workload in workloads:
                coordinator.submit(graph, workload)
            report = coordinator.dispatch()
            assert report.all_delivered
        print(
            f"{probes} passes x {len(workloads)} workloads dispatched; "
            f"cost model version {coordinator.planner.cost_model.version}"
        )

        print("\n== EXPLAIN per workload (calibrated) ==")
        for workload in workloads:
            explanation = coordinator.explain(graph, workload)
            print(f"\n-- {workload.name} --")
            print(explanation.render())

        print("\n== one more dispatch: plans visible in the cluster report ==")
        for workload in workloads:
            coordinator.submit(graph, workload)
        report = coordinator.dispatch()
        print(f"backend_counts: {report.backend_counts}")
        print(f"plan_counts:    {report.plan_counts}")
        print(report.render())


if __name__ == "__main__":
    main()
