"""Elastic cluster tour: autoscaling, hot-key replication, and chaos failover.

The elastic control plane end to end, on one seeded run each:

1. a queue-depth :class:`~repro.elastic.Autoscaler` grows a 2-shard cluster
   under a bursty arrival process and shrinks it back in the quiet tail,
   riding the warm shm handoff so scale events cost zero re-preprocessing;
2. a seeded :class:`~repro.elastic.FaultPlan` crashes a shard mid-run and
   rejoins it later — the coordinator's health check observes the crash,
   re-owns the dead shard's admitted batches, and the SLO report proves
   ``lost_batches == 0`` with the failover windows' latency split out;
3. ``replication_factor=2`` publishes the hottest fingerprint to a second
   owner and round-robins reads across both, all still cache hits.

Run with ``PYTHONPATH=src python examples/elastic_chaos_demo.py`` (or after
``pip install -e .``).
"""

from repro.cluster import ClusterCoordinator, OpenLoopLoadGenerator
from repro.elastic import Autoscaler, AutoscalerConfig, FaultPlan
from repro.graphs.generators import random_regular_expander
from repro.metrics import MetricsRegistry
from repro.planner import ExecutionPlan
from repro.workloads import permutation_workload

PLAN = ExecutionPlan(backend="deterministic", max_workers=2)


def chaos_run() -> None:
    print("== bursty autoscale + seeded kill/rejoin, zero lost batches ==")
    graphs = [random_regular_expander(64, degree=8, seed=seed) for seed in range(4)]
    with ClusterCoordinator(
        shard_count=2, cache_capacity=8, default_plan=PLAN, metrics=MetricsRegistry()
    ) as coordinator:
        autoscaler = Autoscaler(
            coordinator,
            AutoscalerConfig(
                policy="queue-depth",
                min_shards=2,
                max_shards=5,
                scale_up_depth=3.0,
                scale_down_depth=1.0,
                evaluate_interval=0.05,
                cooldown=0.05,
            ),
        )
        plan = FaultPlan.kill_and_rejoin("shard-1", kill_at=0.35, rejoin_at=0.7)
        generator = OpenLoopLoadGenerator(
            graphs,
            rate=220.0,
            duration=1.0,
            arrival="bursty",
            burst_factor=3.0,
            dispatch_interval=0.05,
            seed=13,
        )
        report = generator.run(coordinator, fault_plan=plan, autoscaler=autoscaler)
        print(report.render())
        assert report.lost_batches == 0, "failover must never drop admitted batches"
        assert report.completed == report.admitted
        print(
            f"\nsurvived {report.failovers} failover(s): "
            f"{report.requeued_batches} batches requeued, 0 lost; "
            f"{len(report.scale_events)} scale events"
        )


def replication_run() -> None:
    print("\n== hot-key replication: R=2 spreads the hotspot, still all hits ==")
    graph = random_regular_expander(64, degree=8, seed=0)
    workload = permutation_workload(graph, shift=3)
    metrics = MetricsRegistry()
    with ClusterCoordinator(
        shard_count=3,
        cache_capacity=4,
        default_plan=PLAN,
        metrics=metrics,
        replication_factor=2,
        hot_key_threshold=1.0,
    ) as coordinator:
        reports = []
        for _ in range(5):
            for _ in range(6):
                coordinator.submit(graph, workload)
            reports.append(coordinator.dispatch())
        replicated = coordinator.replicated_keys()
        served = sorted({shard for report in reports[2:] for shard in report.shard_reports})
        print(f"replicated keys: {len(replicated)} -> owners spread over {served}")
        warm = reports[-1]
        assert warm.cache_hits == warm.query_count, "replica reads must stay cache hits"
        for family in (
            "repro_cluster_replica_publishes_total",
            "repro_cluster_replica_reads_total",
        ):
            print(f"{family}: {metrics.as_dict().get(family, {})}")


def main() -> None:
    chaos_run()
    replication_run()


if __name__ == "__main__":
    main()
