"""Quickstart: preprocess an expander once, answer several routing queries cheaply.

Run with:  python examples/quickstart.py
"""

from repro import ExpanderRouter, RoutingRequest
from repro.graphs import random_regular_expander


def main() -> None:
    # 1. Build a reproducible expander: 256 vertices, 8-regular.
    graph = random_regular_expander(256, degree=8, seed=1)

    # 2. Preprocess it (Theorem 1.1's first phase): hierarchical decomposition,
    #    best-vertex delegation, and one shuffler per internal node.
    router = ExpanderRouter(graph, epsilon=0.5)
    summary = router.preprocess()
    print(f"preprocessing: {summary.rounds} CONGEST rounds, "
          f"{summary.hierarchy_levels} hierarchy levels, "
          f"{summary.shuffler_count} shufflers")

    # 3. Answer routing queries.  Each vertex sends one token to a shifted
    #    destination; every vertex is the source and the destination of at most
    #    one token (a load-1 instance of Task 1).
    n = graph.number_of_nodes()
    for shift in (7, 31, 101):
        requests = [
            RoutingRequest(source=v, destination=(v + shift) % n, payload=f"msg from {v}")
            for v in graph.nodes()
        ]
        outcome = router.route(requests)
        print(f"shift {shift:4d}: delivered {outcome.delivered}/{outcome.total_tokens} tokens "
              f"in {outcome.query_rounds} query rounds "
              f"(preprocessing reused, not recharged)")

    # 4. The tradeoff in one line: answering queries against the reused
    #    preprocessing is cheaper than rebuilding the structures per query
    #    (which is what the prior deterministic algorithm effectively does).
    with_reuse = outcome.query_rounds
    rebuild_each_time = outcome.query_rounds + summary.rounds
    print(f"rounds per query with reuse: {with_reuse}; "
          f"rebuilding preprocessing per query would cost {rebuild_each_time}")


if __name__ == "__main__":
    main()
