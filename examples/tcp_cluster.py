"""Network serving tour: shard server processes, a gateway, and a wire client.

The cluster as real network services, end to end:

1. a ``transport="tcp"`` :class:`~repro.cluster.ClusterCoordinator` spawns one
   server process per shard (unix sockets here; ``net_family="inet"`` for
   TCP) and scatters each dispatch over versioned wire frames;
2. the same seeded traffic through a ``transport="local"`` twin produces
   **byte-identical** :meth:`~repro.cluster.ClusterReport.signature` values —
   the wire adds transport, not behaviour;
3. a :class:`~repro.net.ClusterGateway` fronts a coordinator for remote
   clients, and the coordinator-shaped :class:`~repro.net.ClusterClient`
   drives it — the open-loop load generator cannot tell them apart;
4. request deadlines degrade loudly but safely: expired submits are refused,
   and dispatch slices that miss the deadline are requeued, never lost;
5. every hop is visible in the ``repro_net_*`` metric families.

Run with ``PYTHONPATH=src python examples/tcp_cluster.py`` (or after
``pip install -e .``).
"""

import tempfile

from repro.cluster import ClusterCoordinator, OpenLoopLoadGenerator
from repro.graphs.generators import random_regular_expander
from repro.metrics import MetricsRegistry
from repro.net import ClusterClient, ClusterGateway, DeadlineExpired
from repro.planner import ExecutionPlan
from repro.workloads import permutation_workload

PLAN = ExecutionPlan(backend="deterministic", max_workers=2)


def run_cluster(transport: str) -> tuple:
    with ClusterCoordinator(
        shard_count=2,
        cache_capacity=4,
        default_plan=PLAN,
        metrics=MetricsRegistry(),
        transport=transport,
    ) as coordinator:
        generator = OpenLoopLoadGenerator(
            [random_regular_expander(48, degree=6, seed=seed) for seed in range(2)],
            rate=80.0,
            duration=0.4,
            dispatch_interval=0.1,
            seed=3,
        )
        slo = generator.run(coordinator)
    return slo, [report.signature() for report in slo.cluster_reports]


def main() -> None:
    print("== shard server processes: the same traffic, local vs tcp ==")
    local_slo, local_sigs = run_cluster("local")
    tcp_slo, tcp_sigs = run_cluster("tcp")
    assert local_sigs == tcp_sigs, "transports must agree byte for byte"
    local_rtt, tcp_rtt = local_slo.round_trip_quantile(0.99), tcp_slo.round_trip_quantile(0.99)
    print(f"local: {local_slo.completed} served, rtt p99 {local_rtt:.4f}s")
    print(f"tcp:   {tcp_slo.completed} served, rtt p99 {tcp_rtt:.4f}s")
    print(f"signatures identical across {len(tcp_sigs)} dispatch windows")
    print(f"tcp transport overhead: {sum(tcp_slo.transport_overhead_seconds):.4f}s total")

    print("\n== a gateway fronting the cluster for wire clients ==")
    metrics = MetricsRegistry()
    coordinator = ClusterCoordinator(
        shard_count=2, cache_capacity=4, default_plan=PLAN, metrics=metrics
    )
    graphs = [random_regular_expander(48, degree=6, seed=seed) for seed in range(2)]
    with tempfile.TemporaryDirectory(prefix="repro-example-") as sockets:
        with coordinator, ClusterGateway(
            coordinator, socket_path=f"{sockets}/gateway.sock"
        ) as gateway:
            with ClusterClient(gateway.address, metrics=MetricsRegistry()) as client:
                print(f"gateway bound at {gateway.address}; ping -> {client.ping()}")
                slo = OpenLoopLoadGenerator(
                    graphs, rate=60.0, duration=0.3, dispatch_interval=0.1, seed=5
                ).run(client)
                print(slo.render())

                print("\n== deadline semantics: refuse loudly, requeue safely ==")
                workload = permutation_workload(graphs[0], shift=1)
                try:
                    client.submit(graphs[0], workload.requests[:1], deadline=0.0)
                except DeadlineExpired as error:
                    print(f"expired submit refused: {error}")
                client.submit(graphs[0], workload.requests[:2], workload=workload.name)
                report = client.dispatch(deadline=0.0)
                print(
                    f"expired dispatch: served {report.query_count}, "
                    f"requeued shards {list(client.last_expired)}, "
                    f"queued {sum(client.queue_depths().values())}"
                )
                report = client.dispatch()
                print(f"redispatch served the requeued work: {report.query_count} query")

        print("\n== repro_net_* metrics (gateway side, excerpt) ==")
        excerpt = [
            line
            for line in metrics.render_text().splitlines()
            if line.startswith("repro_net_") and not line.startswith("#")
        ]
        print("\n".join(excerpt[:12]))


if __name__ == "__main__":
    main()
