"""Backend showdown: the paper's comparison, end to end through the service.

Routes the same workload shapes through every registered routing backend —
the paper's deterministic router (Theorem 1.1), the CS20-style
rebuild-per-query comparator, the randomized GKS baseline, and naive direct
routing — via :meth:`RoutingService.compare_batch`, then repeats the
comparison warm to show the deterministic backend's preprocessing amortizing
to zero while the rebuild comparator pays full price in every query.

Run with:  PYTHONPATH=src python examples/backend_showdown.py
"""

from repro.backends import available_backends
from repro.graphs import random_regular_expander
from repro.service import RoutingService
from repro.workloads import make_workload

WORKLOAD_SPECS = [
    ("permutation", {"shift": 3}),
    ("hotspot", {"load": 2, "seed": 1}),
    ("adversarial-bipartite", {"seed": 2}),
    ("multi-token", {"load": 2}),
]


def main() -> None:
    n = 96
    graph = random_regular_expander(n, degree=8, seed=7)
    workloads = [make_workload(name, graph, **params) for name, params in WORKLOAD_SPECS]
    service = RoutingService(epsilon=0.5, max_workers=4)

    print(f"== cold comparison: {', '.join(available_backends())} on n={n} ==")
    cold = service.compare_batch(graph, workloads)
    print(cold.render())

    print("\n== warm repeat: the deterministic artifact comes from the cache ==")
    warm = service.compare_batch(graph, workloads)
    det = warm.batch_reports["deterministic"]
    print(
        f"deterministic: preprocess_rounds_incurred={det.preprocess_rounds_incurred} "
        f"(reused {det.preprocess_rounds_reused}); "
        "rebuild-per-query still pays its rebuild inside every query's rounds."
    )
    assert det.preprocess_rounds_incurred == 0
    assert warm.all_delivered

    print(
        "\nReading the tables: 'direct' reports raw congestion+dilation rounds, "
        "which stay small on a benign expander but carry no worst-case guarantee; "
        "'rebuild-per-query' delivers everything but re-pays the full preprocessing "
        "(plus the sequential pair-iteration factor) inside every query; the "
        "deterministic backend matches the randomized baseline's guarantee with no "
        "randomness and amortizes its preprocessing across the batch."
    )


if __name__ == "__main__":
    main()
