"""Serving-layer tour: fingerprinted artifact cache + batched parallel routing.

The paper's headline tradeoff — expensive one-time preprocessing, cheap
queries — only pays off when the preprocessing is reused.  The
:class:`repro.service.RoutingService` makes that reuse operational:

1. a cold batch preprocesses each distinct expander once (concurrently) and
   caches the resulting artifact by canonical graph fingerprint;
2. a warm batch routes entirely from the cache — zero preprocessing rounds;
3. artifacts can persist on disk and be picked up by a later process;
4. changing the graph changes its fingerprint, so stale artifacts are never
   served.

Run with ``PYTHONPATH=src python examples/serving_demo.py`` (or after
``pip install -e .``).
"""

import tempfile

from repro.analysis.experiments import permutation_requests
from repro.graphs.generators import circulant_expander, random_regular_expander
from repro.service import ArtifactCache, RoutingService


def main() -> None:
    graph = random_regular_expander(96, degree=8, seed=7)
    other = circulant_expander(64)

    with tempfile.TemporaryDirectory() as store:
        service = RoutingService(
            epsilon=0.5,
            cache=ArtifactCache(capacity=4, disk_dir=store),
            max_workers=4,
        )

        print("== cold batch: 3 queries on one expander + 1 on another ==")
        for shift in (1, 2, 3):
            service.submit(graph, permutation_requests(graph, load=1))
        service.submit(other, permutation_requests(other, load=1))
        print(service.route_batch().render())

        print("\n== warm batch: same graphs, preprocessing served from cache ==")
        for _ in range(4):
            service.submit(graph, permutation_requests(graph, load=2))
        report = service.route_batch()
        print(report.render(per_query=False))
        assert report.preprocess_rounds_incurred == 0

        print("\n== a new service process reuses the on-disk artifacts ==")
        revived = RoutingService(
            epsilon=0.5, cache=ArtifactCache(capacity=4, disk_dir=store)
        )
        outcome = revived.route(graph, permutation_requests(graph, load=1))
        stats = revived.cache.stats
        print(
            f"delivered {outcome.delivered}/{outcome.total_tokens} "
            f"with disk_hits={stats.disk_hits}, misses={stats.misses}"
        )

        print("\n== editing the graph invalidates its cache entry ==")
        mutated = graph.copy()
        mutated.add_edge(0, 43)
        print("fingerprint changed:", service.fingerprint(mutated) != service.fingerprint(graph))
        service.submit(mutated, permutation_requests(mutated, load=1))
        report = service.route_batch()
        print(
            f"mutated graph: cache_hits={report.cache_hits}, "
            f"new preprocess rounds={report.preprocess_rounds_incurred}"
        )


if __name__ == "__main__":
    main()
