"""Expander sorting, its primitives, and the routing/sorting equivalence (Appendix F).

Demonstrates: sorting tokens across an expander's vertices, token ranking /
serialization / aggregation, top-k frequent elements, and the two reductions
between routing and sorting.

Run with:  python examples/sorting_and_summarization.py
"""

from repro.applications import routing_via_sorting, sorting_via_routing, top_k_frequent
from repro.sorting import (
    AnnotatedToken,
    SortItem,
    expander_sort,
    is_globally_sorted,
    local_aggregation,
    local_serialization,
)


def main() -> None:
    vertices = list(range(32))

    # -- expander sorting (Theorem 5.6) ------------------------------------
    items = {
        v: [SortItem(key=(v * 13 + s) % 17, tag=f"{v}-{s}") for s in range(2)] for v in vertices
    }
    result = expander_sort(vertices, items, load=2, engine="comparator")
    print(f"expander sort: globally sorted = {is_globally_sorted(result.placement, vertices)}, "
          f"network depth = {result.network_depth}, rounds = {result.rounds}")

    # -- primitives ---------------------------------------------------------
    tokens = [AnnotatedToken(key=v % 4, tag=v, location=v % 8) for v in range(40)]
    serialized = local_serialization(tokens)
    aggregated = local_aggregation(serialized.tokens)
    sample = aggregated.tokens[0]
    print(f"local serialization/aggregation: token key={sample.key} serial={sample.serial} "
          f"group size={sample.count}")

    # -- top-k frequent elements (SV19-style) --------------------------------
    word_lists = {v: [f"word-{v % 5}", f"word-{v % 3}"] for v in vertices}
    top = top_k_frequent(word_lists, k=3)
    print(f"top-3 frequent elements: {top.top_items} ({top.rounds} rounds)")

    # -- routing <-> sorting equivalence (Appendix F) -------------------------
    def routing_oracle(demands):
        delivered = {}
        for origin, pairs in demands.items():
            for destination, item in pairs:
                delivered.setdefault(destination, []).append(item)
        return delivered

    def sorting_oracle(keyed):
        ordered = sorted((pair for pairs in keyed.values() for pair in pairs), key=lambda p: p[0])
        per_vertex = max(1, -(-len(ordered) // len(vertices)))
        return {
            vertex: ordered[i * per_vertex: (i + 1) * per_vertex]
            for i, vertex in enumerate(sorted(keyed))
        }

    sort_record = sorting_via_routing(
        {v: [((v * 7) % 13, f"item-{v}")] for v in vertices}, routing_oracle, load=1
    )
    route_record = routing_via_sorting(
        {v: [((v * 5) % 32, f"token-{v}")] for v in vertices}, sorting_oracle, load=1
    )
    print(f"sorting via routing: {sort_record.routing_calls} routing calls "
          f"(network depth {sort_record.network_depth})")
    print(f"routing via sorting: {route_record.sorting_calls} sorting calls, "
          f"{sum(len(v) for v in route_record.delivered.values())} tokens delivered")


if __name__ == "__main__":
    main()
