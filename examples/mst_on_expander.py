"""Corollary 1.3: deterministic MST on an expander via expander routing.

Runs Boruvka where each phase's fragment bookkeeping is exchanged through
expander-routing queries, and verifies the result against Kruskal.

Run with:  python examples/mst_on_expander.py
"""

import networkx as nx

from repro.analysis import print_table
from repro.applications import boruvka_mst
from repro.graphs import weighted_expander


def main() -> None:
    rows = []
    for n in (64, 128, 256):
        graph = weighted_expander(n, degree=8, seed=2)
        result = boruvka_mst(graph, epsilon=0.5)
        reference = nx.minimum_spanning_tree(graph).size(weight="weight")
        rows.append(
            {
                "n": n,
                "mst_weight": result.total_weight,
                "kruskal_weight": reference,
                "matches": abs(result.total_weight - reference) < 1e-9,
                "boruvka_phases": result.phases,
                "routing_queries": result.routing_queries,
                "query_rounds": result.rounds,
                "preprocessing_rounds": result.preprocessing_rounds,
            }
        )
    print("Deterministic MST on expanders (Corollary 1.3)")
    print_table(rows)


if __name__ == "__main__":
    main()
