"""Theorem 1.1: the preprocessing/query tradeoff, measured.

Sweeps the tradeoff parameter epsilon, measuring preprocessing rounds,
per-query rounds, and the amortized cost over a batch of queries (with reuse)
against a CS20-style rebuild-per-query strategy.

Run with:  python examples/preprocess_query_tradeoff.py
"""

from repro.analysis import permutation_requests, print_table
from repro.core import ExpanderRouter
from repro.graphs import random_regular_expander


def main() -> None:
    n, load, queries = 128, 2, 4
    graph = random_regular_expander(n, degree=8, seed=1)
    rows = []
    for epsilon in (0.34, 0.5, 0.7):
        router = ExpanderRouter(graph, epsilon=epsilon)
        summary = router.preprocess()
        requests = permutation_requests(graph, load)
        per_query = [router.route(requests).query_rounds for _ in range(queries)]
        mean_query = sum(per_query) / len(per_query)
        rows.append(
            {
                "epsilon": epsilon,
                "hierarchy_levels": summary.hierarchy_levels,
                "preprocess_rounds": summary.rounds,
                "query_rounds": mean_query,
                "amortized_with_reuse": summary.rounds / queries + mean_query,
                "rebuild_per_query": summary.rounds + mean_query,
            }
        )
    print(f"Preprocessing/query tradeoff on n={n}, L={load}, {queries} queries (Theorem 1.1)")
    print_table(rows)
    print(
        "\nReading the table: larger epsilon -> shallower hierarchy -> cheaper queries; "
        "reusing the preprocessing across queries always beats rebuilding it per query."
    )


if __name__ == "__main__":
    main()
