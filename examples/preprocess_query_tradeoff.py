"""Theorem 1.1: the preprocessing/query tradeoff, measured.

Sweeps the tradeoff parameter epsilon, measuring preprocessing rounds,
per-query rounds, and the amortized cost over a batch of queries (with reuse)
against the CS20-style rebuild-per-query backend — both sides now measured
through the pluggable backend layer (see ``examples/backend_showdown.py`` for
the full multi-backend comparison across workload shapes).

Run with:  PYTHONPATH=src python examples/preprocess_query_tradeoff.py
"""

from repro.analysis import print_table
from repro.backends import get_backend
from repro.graphs import random_regular_expander
from repro.workloads import multi_token_workload


def main() -> None:
    n, load, queries = 128, 2, 4
    graph = random_regular_expander(n, degree=8, seed=1)
    workload = multi_token_workload(graph, load=load)
    rebuild = get_backend("rebuild-per-query", graph, epsilon=0.5)
    rebuild_rounds = rebuild.route(list(workload.requests), load=load).query_rounds
    rows = []
    for epsilon in (0.34, 0.5, 0.7):
        backend = get_backend("deterministic", graph, epsilon=epsilon)
        info = backend.preprocess()
        per_query = [
            backend.route(list(workload.requests), load=load).query_rounds
            for _ in range(queries)
        ]
        mean_query = sum(per_query) / len(per_query)
        rows.append(
            {
                "epsilon": epsilon,
                "hierarchy_levels": info.details["hierarchy_levels"],
                "preprocess_rounds": info.rounds,
                "query_rounds": mean_query,
                "amortized_with_reuse": info.rounds / queries + mean_query,
                "rebuild_per_query": rebuild_rounds,
            }
        )
    print(f"Preprocessing/query tradeoff on n={n}, L={load}, {queries} queries (Theorem 1.1)")
    print_table(rows)
    print(
        "\nReading the table: larger epsilon -> shallower hierarchy -> cheaper queries; "
        "from the default epsilon up, amortizing the preprocessing over the batch is "
        "an order of magnitude below the rebuild-per-query backend, whose measured "
        "rounds re-pay the full preprocessing (plus the sequential pair-iteration "
        "factor) on every query."
    )


if __name__ == "__main__":
    main()
