"""Tests for the expander split (Appendix E) and cluster graphs (Definition 5.1)."""

import networkx as nx
import pytest

from repro.graphs.cluster import build_cluster_graph, natural_fractional_matching
from repro.graphs.conductance import estimate_conductance
from repro.graphs.expander_split import expander_split
from repro.graphs.generators import circulant_expander, skewed_degree_expander


# -- expander split ----------------------------------------------------------


def test_split_has_one_copy_per_incident_edge():
    graph = circulant_expander(16, offsets=(1, 2))
    split = expander_split(graph)
    for vertex in graph.nodes():
        assert len(split.copies_of[vertex]) == graph.degree(vertex)
    assert split.split_size() == sum(graph.degree(v) for v in graph.nodes())


def test_split_is_connected_and_bounded_degree():
    graph = skewed_degree_expander(48, hub_count=2, degree=6, seed=1)
    split = expander_split(graph)
    assert nx.is_connected(split.split)
    max_original = max(degree for _, degree in graph.degree())
    max_split = max(degree for _, degree in split.split.degree())
    assert max_split < max_original  # hubs were exploded into gadgets
    assert max_split <= 8


def test_split_vertex_lifting_roundtrip():
    graph = circulant_expander(12, offsets=(1, 2))
    split = expander_split(graph)
    for vertex in graph.nodes():
        for copy in split.copies_of[vertex]:
            assert split.lift_token_position(copy) == vertex


def test_split_destination_assignment_is_load_balanced():
    graph = circulant_expander(12, offsets=(1, 2, 3))
    split = expander_split(graph)
    vertex = 0
    copies = split.copies_of[vertex]
    assigned = [split.assign_destination(vertex, serial) for serial in range(2 * len(copies))]
    # Round-robin: every copy receives exactly two of the 2*deg assignments.
    assert all(assigned.count(copy) == 2 for copy in copies)


def test_split_preserves_expansion_order_of_magnitude():
    graph = circulant_expander(16, offsets=(1, 2))
    split = expander_split(graph)
    original = estimate_conductance(graph)
    split_sparsity = estimate_conductance(split.split)
    # Psi(G_diamond) = Theta(Phi(G)); allow a generous constant.
    assert split_sparsity >= original / 8


# -- cluster graphs ------------------------------------------------------------


def test_cluster_graph_contraction_counts_crossing_edges():
    graph = nx.cycle_graph(8)
    cluster = build_cluster_graph(graph, [[0, 1, 2, 3], [4, 5, 6, 7]])
    assert cluster.size == 2
    assert cluster.crossing_edges(0, 1) == 2  # edges (3,4) and (7,0)


def test_cluster_graph_rejects_overlapping_parts():
    graph = nx.path_graph(4)
    with pytest.raises(ValueError):
        build_cluster_graph(graph, [[0, 1], [1, 2]])


def test_cluster_expand_returns_base_vertices():
    graph = nx.cycle_graph(6)
    cluster = build_cluster_graph(graph, [[0, 1], [2, 3], [4, 5]])
    assert cluster.expand([0, 2]) == {0, 1, 4, 5}


def test_natural_fractional_matching_normalisation():
    graph = nx.cycle_graph(8)
    cluster = build_cluster_graph(graph, [[0, 1, 2, 3], [4, 5, 6, 7]])
    matching = [(0, 4), (1, 5), (2, 6)]
    fractional = natural_fractional_matching(cluster, matching, normalizer=4.0)
    assert fractional[(0, 1)] == pytest.approx(3 / 4)


def test_natural_fractional_matching_clamps_degree_to_one():
    graph = nx.complete_graph(6)
    cluster = build_cluster_graph(graph, [[0, 1], [2, 3], [4, 5]])
    matching = [(0, 2), (1, 3), (0, 4), (1, 5)]
    fractional = natural_fractional_matching(cluster, matching, normalizer=1.0)
    degree0 = sum(value for (a, b), value in fractional.items() if 0 in (a, b))
    assert degree0 <= 1.0 + 1e-9


def test_natural_fractional_matching_ignores_intra_part_edges():
    graph = nx.complete_graph(4)
    cluster = build_cluster_graph(graph, [[0, 1], [2, 3]])
    fractional = natural_fractional_matching(cluster, [(0, 1)], normalizer=2.0)
    assert fractional == {}
