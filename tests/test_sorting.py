"""Tests for sorting networks, expander sorting (Theorem 5.6), and the derived primitives."""

import pytest

from repro.core.cost import sorting_network_depth
from repro.sorting.expander_sort import (
    ComparatorSortEngine,
    OracleSortEngine,
    SortItem,
    expander_sort,
    is_globally_sorted,
)
from repro.sorting.networks import (
    apply_network,
    batcher_odd_even_network,
    bitonic_network,
    insertion_network,
    is_sorting_network,
)
from repro.sorting.primitives import (
    AnnotatedToken,
    local_aggregation,
    local_propagation,
    local_serialization,
    token_ranking,
)


# -- sorting networks --------------------------------------------------------------


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 9])
def test_batcher_network_sorts_all_binary_inputs(size):
    assert is_sorting_network(batcher_odd_even_network(size), exhaustive_limit=10)


@pytest.mark.parametrize("size", [2, 4, 8])
def test_bitonic_network_sorts_all_binary_inputs(size):
    assert is_sorting_network(bitonic_network(size), exhaustive_limit=10)


@pytest.mark.parametrize("size", [2, 5, 8])
def test_insertion_network_sorts(size):
    assert is_sorting_network(insertion_network(size), exhaustive_limit=10)


def test_batcher_depth_is_polylog_and_below_insertion_depth():
    batcher = batcher_odd_even_network(64)
    brick = insertion_network(64)
    assert batcher.depth < brick.depth
    assert batcher.depth <= 2 * sorting_network_depth(64)


def test_apply_network_rejects_wrong_length():
    with pytest.raises(ValueError):
        apply_network(batcher_odd_even_network(4), [1, 2, 3])


def test_network_layers_have_disjoint_comparators():
    network = batcher_odd_even_network(16)
    for layer in network.layers:
        touched = [position for comparator in layer for position in comparator]
        assert len(touched) == len(set(touched))


# -- expander sorting -----------------------------------------------------------------


def _make_items(vertices, load, key_of):
    return {
        vertex: [
            SortItem(key=key_of(vertex, slot), value=(vertex, slot), tag=f"{vertex}-{slot}")
            for slot in range(load)
        ]
        for vertex in vertices
    }


def test_comparator_engine_sorts_globally():
    vertices = list(range(10))
    items = _make_items(vertices, 3, lambda v, s: (v * 7 + s * 3) % 11)
    result = ComparatorSortEngine().sort(vertices, items, load=3)
    assert is_globally_sorted(result.placement, vertices)
    assert result.max_load <= 3
    total = sum(len(result.placement.items_at[v]) for v in vertices)
    assert total == 30


def test_oracle_engine_matches_comparator_engine():
    vertices = list(range(8))
    items = _make_items(vertices, 2, lambda v, s: (v * 5 + s) % 7)
    comparator = ComparatorSortEngine().sort(vertices, items, load=2)
    oracle = OracleSortEngine().sort(vertices, items, load=2)
    def flatten(result):
        return [
            (item.key, item.tag)
            for v in vertices
            for item in result.placement.items_at[v]
        ]
    assert flatten(comparator) == flatten(oracle)
    assert comparator.rounds == oracle.rounds


def test_expander_sort_charges_rounds_proportional_to_load_and_quality():
    vertices = list(range(16))
    items_small = _make_items(vertices, 1, lambda v, s: v % 5)
    items_large = _make_items(vertices, 4, lambda v, s: v % 5)
    small = expander_sort(vertices, items_small, load=1, exchange_quality=2, engine="oracle")
    large = expander_sort(vertices, items_large, load=4, exchange_quality=2, engine="oracle")
    assert large.rounds == 4 * small.rounds
    doubled_quality = expander_sort(
        vertices, items_small, load=1, exchange_quality=4, engine="oracle"
    )
    assert doubled_quality.rounds == 4 * small.rounds


def test_expander_sort_handles_uneven_loads_and_empty_vertices():
    vertices = list(range(6))
    items = {0: [SortItem(key=5, tag="a")], 3: [SortItem(key=1, tag="b"), SortItem(key=9, tag="c")]}
    result = expander_sort(vertices, items, load=2, engine="comparator")
    assert is_globally_sorted(result.placement, vertices)
    flattened = [item.key for v in vertices for item in result.placement.items_at[v]]
    assert flattened == [1, 5, 9]


def test_expander_sort_empty_instance():
    result = expander_sort([], {}, load=1)
    assert result.rounds == 0
    assert result.network_depth == 0


# -- primitives (Theorem 5.7, Lemma 5.8, Corollaries 5.9/5.10) ----------------------------


def _annotated(keys):
    return [
        AnnotatedToken(key=key, tag=index, variable=f"var-{index}", location=index % 4)
        for index, key in enumerate(keys)
    ]


def test_token_ranking_counts_distinct_smaller_keys():
    tokens = _annotated([5, 1, 5, 3, 1])
    result = token_ranking(tokens)
    ranks = {token.tag: token.rank for token in result.tokens}
    assert ranks[1] == 0 and ranks[4] == 0      # key 1
    assert ranks[3] == 1                        # key 3
    assert ranks[0] == 2 and ranks[2] == 2      # key 5
    assert result.rounds > 0


def test_local_propagation_copies_smallest_tag_variable():
    tokens = _annotated(["a", "b", "a", "b"])
    result = local_propagation(tokens)
    variables = {token.tag: token.variable for token in result.tokens}
    assert variables[2] == "var-0"   # group "a": smallest tag is 0
    assert variables[3] == "var-1"   # group "b": smallest tag is 1


def test_local_serialization_assigns_distinct_serials_per_group():
    tokens = _annotated(["x", "x", "x", "y"])
    result = local_serialization(tokens)
    serials_x = sorted(token.serial for token in result.tokens if token.key == "x")
    assert serials_x == [0, 1, 2]
    serial_y = [token.serial for token in result.tokens if token.key == "y"]
    assert serial_y == [0]


def test_local_aggregation_reports_group_sizes():
    tokens = _annotated(["p", "q", "p", "p"])
    result = local_aggregation(tokens)
    for token in result.tokens:
        assert token.count == (3 if token.key == "p" else 1)
