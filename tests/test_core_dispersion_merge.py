"""Tests for dispersion (Lemma 6.2 / Definition 6.1) and the Task 3 meet-in-the-middle merge."""

import pytest

from repro.core.cost import CostLedger
from repro.core.dispersion import DispersionState, disperse
from repro.core.merge import solve_task3
from repro.core.tokens import Token
from repro.cutmatching.game import build_shuffler
from repro.graphs.generators import random_regular_expander
from repro.hierarchy.builder import HierarchyParameters, build_hierarchy


@pytest.fixture(scope="module")
def prepared_root():
    graph = random_regular_expander(96, degree=8, seed=7)
    decomposition = build_hierarchy(graph, HierarchyParameters(epsilon=0.5))
    root = decomposition.root
    parts = [sorted(part.vertices) for part in root.parts]
    root.shuffler = build_shuffler(root.virtual_graph, parts, psi=0.1)
    return decomposition, root


# -- dispersion state ---------------------------------------------------------------


def test_dispersion_state_queues_and_pops_in_fifo_order():
    state = DispersionState(3)
    state.add(0, "m", "a")
    state.add(0, "m", "b")
    assert state.count(0, "m") == 2
    assert state.pop_front(0, "m", 1) == ["a"]
    state.push_back(1, "m", ["a"])
    assert state.count(1, "m") == 1
    assert state.part_load(0) == 1


def test_disperse_spreads_marks_near_uniformly(prepared_root):
    _, root = prepared_root
    shuffler = root.shuffler
    t = len(root.parts)
    part_sizes = [part.size for part in root.parts]
    state = DispersionState(t)
    # All tokens of every mark start concentrated on part 0: the worst case.
    per_mark = 30
    for mark in range(t):
        for index in range(per_mark):
            state.add(0, mark, f"tok-{mark}-{index}")
    stats = disperse(state, shuffler, part_sizes, load=per_mark, flatten_quality=1)
    assert stats.iterations == len(shuffler)
    # Definition 6.1 window: the overwhelming majority of (part, mark) cells
    # must hold close to per_mark / t tokens.
    assert stats.window_fraction >= 0.9
    for mark in range(t):
        assert stats.mark_totals[mark] == per_mark  # conservation
    assert stats.rounds > 0


def test_disperse_preserves_every_item(prepared_root):
    _, root = prepared_root
    t = len(root.parts)
    state = DispersionState(t)
    items = [f"item-{i}" for i in range(50)]
    for index, item in enumerate(items):
        state.add(index % t, "mark", item)
    disperse(state, root.shuffler, [part.size for part in root.parts], 4, 1)
    recovered = [item for part in range(t) for item in state.items(part, "mark")]
    assert sorted(recovered) == sorted(items)


def test_disperse_without_matchings_is_a_no_op():
    from repro.cutmatching.shuffler import Shuffler

    state = DispersionState(2)
    state.add(0, "m", "x")
    empty = Shuffler(part_count=2, part_of={})
    stats = disperse(state, empty, [1, 1], 1, 1)
    assert state.count(0, "m") == 1
    assert stats.rounds == 0


# -- Task 3 (solve_task3) -------------------------------------------------------------


def _task3_tokens(root, load):
    """A legal Task 3 instance: every vertex sends `load` tokens to random-ish parts."""
    part_of = root.part_of_vertex()
    t = len(root.parts)
    tokens = []
    token_id = 0
    for vertex in sorted(root.vertices):
        for slot in range(load):
            token = Token(token_id=token_id, source=vertex, destination=vertex)
            token.part_mark = (hash((vertex, slot)) % t + t) % t
            # Deterministic alternative to hash(): spread by id and slot.
            token.part_mark = (vertex * 7 + slot * 13) % t
            tokens.append(token)
            token_id += 1
    return tokens


def test_solve_task3_places_every_token_in_its_marked_part(prepared_root):
    _, root = prepared_root
    ledger = CostLedger()
    tokens = _task3_tokens(root, load=2)
    result = solve_task3(root, tokens, load=2, ledger=ledger)
    part_of = root.part_of_vertex()
    for token in tokens:
        assigned = result.assignments[token.token_id]
        assert part_of[assigned] == token.part_mark
    assert ledger.total() > 0
    assert result.rounds > 0


def test_solve_task3_respects_the_two_l_vertex_load_bound(prepared_root):
    _, root = prepared_root
    ledger = CostLedger()
    load = 2
    tokens = _task3_tokens(root, load=load)
    result = solve_task3(root, tokens, load=load, ledger=ledger)
    assert result.max_vertex_load <= 2 * load


def test_solve_task3_dummy_tokens_dominate_real_tokens(prepared_root):
    # Lemma 6.4: with 2L dummies per vertex, fallback placements are rare.
    _, root = prepared_root
    ledger = CostLedger()
    tokens = _task3_tokens(root, load=2)
    result = solve_task3(root, tokens, load=2, ledger=ledger)
    assert result.fallback_assignments <= len(tokens) * 0.05


def test_solve_task3_requires_a_shuffler(prepared_root):
    decomposition, root = prepared_root
    bare = build_hierarchy(decomposition.graph, HierarchyParameters(epsilon=0.5))
    token = Token(token_id=0, source=min(bare.root.vertices), destination=0)
    token.part_mark = 0
    with pytest.raises(RuntimeError):
        solve_task3(bare.root, [token], load=1, ledger=CostLedger())


def test_solve_task3_rejects_tokens_outside_the_node(prepared_root):
    _, root = prepared_root
    token = Token(token_id=0, source=10**9, destination=0)
    token.part_mark = 0
    token.current_vertex = 10**9
    with pytest.raises(ValueError):
        solve_task3(root, [token], load=1, ledger=CostLedger())
