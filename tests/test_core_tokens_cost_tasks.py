"""Tests for tokens/configurations, the cost ledger, and the task validators."""

import pytest

from repro.core.cost import CostLedger, send_round_cost, sort_round_cost, sorting_network_depth
from repro.core.tasks import Task1Instance, Task2Instance, Task3Instance
from repro.core.tokens import RoutingRequest, Token, TokenConfiguration, tokens_from_requests


# -- tokens ------------------------------------------------------------------------


def test_tokens_from_requests_assigns_deterministic_ids():
    requests = [RoutingRequest(source=2, destination=5), RoutingRequest(source=1, destination=3)]
    tokens = tokens_from_requests(requests)
    assert [token.source for token in tokens] == [1, 2]
    assert [token.token_id for token in tokens] == [0, 1]
    assert tokens == tokens_from_requests(list(reversed(requests)))


def test_token_starts_at_source_and_tracks_delivery():
    token = Token(token_id=0, source=3, destination=7)
    assert token.current_vertex == 3
    assert not token.delivered
    token.move_to(7, phase="direct")
    assert token.delivered
    assert token.trace == ["direct"]


def test_token_configuration_moves_and_loads():
    tokens = [Token(token_id=i, source=0, destination=i) for i in range(3)]
    config = TokenConfiguration(vertices=range(4), tokens=tokens)
    assert config.load(0) == 3
    config.move(tokens[0], 2)
    assert config.load(0) == 2
    assert config.load(2) == 1
    assert config.max_load() == 2
    assert len(config) == 3


def test_token_configuration_destination_load_checks():
    tokens = [Token(token_id=i, source=i, destination=0) for i in range(3)]
    config = TokenConfiguration(vertices=range(3), tokens=tokens)
    assert config.check_source_load(1)
    assert not config.check_destination_load(2)
    assert config.check_destination_load(3)
    assert not config.all_delivered()


# -- cost ledger --------------------------------------------------------------------


def test_cost_ledger_accumulates_and_nests_phases():
    ledger = CostLedger()
    ledger.charge("setup", 10)
    with ledger.phase("query"):
        ledger.charge("sort", 5)
        with ledger.phase("task3"):
            ledger.charge("disperse", 7)
    assert ledger.total() == 22
    assert ledger.total("query") == 12
    assert ledger.phases["query/task3/disperse"] == 7


def test_cost_ledger_rejects_negative_charge_and_merges():
    ledger = CostLedger()
    with pytest.raises(ValueError):
        ledger.charge("x", -1)
    other = CostLedger()
    other.charge("a", 3)
    ledger.merge(other, prefix="sub/")
    assert ledger.phases["sub/a"] == 3


def test_sorting_network_depth_is_monotone_polylog():
    assert sorting_network_depth(1) == 1
    assert sorting_network_depth(1024) == 55  # 10 * 11 / 2
    assert sorting_network_depth(2048) > sorting_network_depth(1024)


def test_round_cost_formulas_scale_as_documented():
    assert sort_round_cost(64, 2, 3) == 2 * 2 * sorting_network_depth(64) * 9
    assert send_round_cost(4, 5) == 4 * 25
    assert send_round_cost(0, 0) == 1  # minimum one round


# -- task validators -------------------------------------------------------------------


def _tokens(pairs):
    return [
        Token(token_id=i, source=src, destination=dst) for i, (src, dst) in enumerate(pairs)
    ]


def test_task1_validator_accepts_legal_instance():
    tokens = _tokens([(0, 1), (1, 2), (2, 0)])
    instance = Task1Instance(vertices=[0, 1, 2], tokens=tokens, load=1)
    assert instance.validate() == []


def test_task1_validator_flags_overloaded_source_and_destination():
    tokens = _tokens([(0, 1), (0, 2)])
    instance = Task1Instance(vertices=[0, 1, 2], tokens=tokens, load=1)
    assert any("holds" in problem for problem in instance.validate())
    tokens = _tokens([(0, 2), (1, 2)])
    instance = Task1Instance(vertices=[0, 1, 2], tokens=tokens, load=1)
    assert any("destination" in problem for problem in instance.validate())


def test_task1_validator_flags_foreign_destination():
    tokens = _tokens([(0, 9)])
    instance = Task1Instance(vertices=[0, 1], tokens=tokens, load=1)
    assert any("outside" in problem for problem in instance.validate())


def test_task2_validator_checks_marker_range_and_multiplicity():
    tokens = _tokens([(0, 0), (1, 0)])
    for token in tokens:
        token.destination_marker = 0
    instance = Task2Instance(
        node_vertices=[0, 1], best_count=2, tokens=tokens, load=1, rho_best=2.0
    )
    assert instance.validate() == []
    tokens[0].destination_marker = 5
    assert any("out of range" in problem for problem in instance.validate())


def test_task3_validator_and_final_configuration():
    tokens = _tokens([(0, 0), (1, 0)])
    tokens[0].part_mark = 0
    tokens[1].part_mark = 1
    instance = Task3Instance(part_sizes=[2, 2], tokens=tokens, load=1)
    assert instance.validate() == []
    part_of = {0: 0, 1: 1}
    assert instance.is_final_configuration(part_of)
    tokens[1].part_mark = 0
    assert not instance.is_final_configuration(part_of)
