"""Tests for the cluster tier: ring, admission, coordinator, load generator."""

import pytest

from repro.cluster import (
    AdmissionController,
    ClusterCoordinator,
    ConsistentHashRing,
    OpenLoopLoadGenerator,
)
from repro.graphs.generators import circulant_expander, random_regular_expander
from repro.metrics import MetricsRegistry
from repro.planner import ExecutionPlan
from repro.workloads import permutation_workload


@pytest.fixture(scope="module")
def graphs():
    return [random_regular_expander(48, degree=6, seed=seed) for seed in range(3)]


def _coordinator(**overrides):
    defaults = dict(
        shard_count=4,
        cache_capacity=4,
        default_plan=ExecutionPlan(backend="deterministic", max_workers=2),
        metrics=MetricsRegistry(),
    )
    defaults.update(overrides)
    return ClusterCoordinator(**defaults)


# -- the consistent-hash ring -----------------------------------------------------


def test_ring_assignment_is_deterministic_across_instances():
    keys = [f"fingerprint-{index}" for index in range(200)]
    first = ConsistentHashRing(["a", "b", "c"], vnodes=32)
    second = ConsistentHashRing(["c", "a", "b"], vnodes=32)  # order must not matter
    assert first.placement(keys) == second.placement(keys)


def test_ring_spreads_keys_over_every_shard():
    ring = ConsistentHashRing([f"shard-{i}" for i in range(4)], vnodes=64)
    keys = [f"key-{index}" for index in range(1000)]
    spread = ring.spread(keys)
    assert set(spread) == set(ring.shard_ids)
    # Virtual nodes keep the split from collapsing onto a few shards.
    assert min(spread.values()) > 0
    assert max(spread.values()) < 1000 // 2


def test_adding_a_shard_only_moves_keys_to_the_new_shard():
    keys = [f"key-{index}" for index in range(1000)]
    ring = ConsistentHashRing(["a", "b", "c", "d"], vnodes=64)
    before = ring.placement(keys)
    ring.add_shard("e")
    after = ring.placement(keys)
    moved = {key for key in keys if before[key] != after[key]}
    assert moved, "a new shard must capture some keys"
    assert all(after[key] == "e" for key in moved)


def test_removing_a_shard_only_moves_its_own_keys():
    keys = [f"key-{index}" for index in range(1000)]
    ring = ConsistentHashRing(["a", "b", "c", "d"], vnodes=64)
    before = ring.placement(keys)
    ring.remove_shard("d")
    after = ring.placement(keys)
    for key in keys:
        if before[key] == "d":
            assert after[key] != "d"
        else:
            assert after[key] == before[key]


def test_rebalance_moves_at_most_the_expected_fraction_with_slack():
    keys = [f"key-{index}" for index in range(2000)]
    before = ConsistentHashRing([f"s{i}" for i in range(4)], vnodes=128)
    after = ConsistentHashRing([f"s{i}" for i in range(5)], vnodes=128)
    stats = after.rebalance_stats(before, keys)
    assert stats.expected_fraction == pytest.approx(1 / 5)
    # Consistent hashing moves about 1/(N+1); double is a generous variance
    # allowance and far below the ~4/5 a naive modulo rehash would move.
    assert 0 < stats.moved_fraction <= 2 * stats.expected_fraction


def test_ring_rejects_duplicates_and_empty_lookups():
    ring = ConsistentHashRing(["a"], vnodes=8)
    with pytest.raises(ValueError):
        ring.add_shard("a")
    with pytest.raises(ValueError):
        ConsistentHashRing(vnodes=8).assign("key")
    with pytest.raises(ValueError):
        ring.remove_shard("missing")


# -- admission control ------------------------------------------------------------


def test_reject_policy_refuses_arrivals_when_full():
    controller = AdmissionController(capacity=2, policy="reject")
    outcomes = [controller.offer("s", index) for index in range(5)]
    assert [decision.accepted for decision in outcomes] == [True, True, False, False, False]
    stats = controller.stats_for("s")
    assert (stats.offered, stats.accepted, stats.rejected, stats.shed) == (5, 2, 3, 0)
    assert controller.drain("s") == [0, 1]


def test_shed_oldest_policy_keeps_the_freshest_work():
    controller = AdmissionController(capacity=2, policy="shed-oldest")
    shed = []
    for index in range(5):
        decision = controller.offer("s", index)
        assert decision.accepted
        shed.extend(decision.shed)
    assert shed == [0, 1, 2]
    assert controller.drain("s") == [3, 4]
    stats = controller.stats_for("s")
    assert (stats.accepted, stats.shed, stats.rejected) == (5, 3, 0)
    assert stats.drop_rate == pytest.approx(3 / 5)


def test_unbounded_controller_never_drops():
    controller = AdmissionController(capacity=None)
    for index in range(100):
        assert controller.offer("s", index).accepted
    assert controller.depth("s") == 100
    assert controller.total_stats().dropped == 0


def test_admission_validates_configuration():
    with pytest.raises(ValueError):
        AdmissionController(capacity=0)
    with pytest.raises(ValueError):
        AdmissionController(policy="drop-table")


# -- the coordinator --------------------------------------------------------------


def test_cluster_serves_a_batch_and_merges_reports(graphs):
    coordinator = _coordinator()
    for graph in graphs:
        for shift in (1, 2):
            decision = coordinator.submit(graph, permutation_workload(graph, shift=shift))
            assert decision.accepted
    report = coordinator.dispatch()
    assert report.query_count == len(graphs) * 2
    assert report.all_delivered
    assert report.lost_batches == 0 and report.requeued_batches == 0
    assert report.preprocess_rounds_incurred > 0
    # Merged totals equal the per-shard sums.
    assert report.query_count == sum(r.query_count for r in report.shard_reports.values())
    assert set(report.shard_reports) <= set(coordinator.shard_ids)
    rendered = report.render()
    assert "[cluster]" in rendered and "p99_seconds" in rendered


def test_warm_dispatch_reuses_every_artifact(graphs):
    coordinator = _coordinator()
    workloads = [permutation_workload(graph) for graph in graphs]
    for graph, workload in zip(graphs, workloads):
        coordinator.submit(graph, workload)
    cold = coordinator.dispatch()
    for graph, workload in zip(graphs, workloads):
        coordinator.submit(graph, workload)
    warm = coordinator.dispatch()
    assert cold.preprocess_rounds_incurred > 0
    assert warm.preprocess_rounds_incurred == 0
    assert warm.cache_hit_rate == 1.0
    assert warm.preprocess_rounds_reused > 0


def test_artifact_locality_one_fingerprint_one_shard_cache(graphs):
    coordinator = _coordinator()
    for graph in graphs:
        coordinator.submit(graph, permutation_workload(graph))
    coordinator.dispatch()
    fingerprints = {coordinator.fingerprint(graph) for graph in graphs}
    stores_by_shard = {
        shard_id: worker.cache_stats.stores for shard_id, worker in coordinator.workers.items()
    }
    # Every artifact is built exactly once, on the shard the ring assigned it.
    assert sum(stores_by_shard.values()) == len(fingerprints)
    for fingerprint in fingerprints:
        owner = coordinator.ring.assign(fingerprint)
        assert fingerprint in coordinator.workers[owner].service.cache


def test_same_config_same_submissions_identical_cluster_reports(graphs):
    signatures = []
    for _ in range(2):
        coordinator = _coordinator()
        generator = OpenLoopLoadGenerator(
            graphs,
            rate=80.0,
            duration=0.3,
            dispatch_interval=0.1,
            seed=42,
        )
        slo = generator.run(coordinator)
        signatures.append([report.signature() for report in slo.cluster_reports])
    assert signatures[0] == signatures[1]


def test_add_shard_reports_rebalance_over_seen_fingerprints(graphs):
    coordinator = _coordinator(shard_count=2)
    for graph in graphs:
        coordinator.submit(graph, permutation_workload(graph))
    coordinator.dispatch()
    stats = coordinator.add_shard()
    assert coordinator.shard_count == 3
    assert stats.total == len(graphs)
    assert stats.expected_fraction == pytest.approx(1 / 3)
    assert 0 <= stats.moved <= stats.total
    # The cluster still serves correctly after the topology change.
    for graph in graphs:
        coordinator.submit(graph, permutation_workload(graph))
    report = coordinator.dispatch()
    assert report.all_delivered


def test_remove_shard_requeues_stranded_work(graphs):
    coordinator = _coordinator(shard_count=3)
    for graph in graphs:
        coordinator.submit(graph, permutation_workload(graph))
    victim = coordinator.shard_ids[0]
    pending_before = coordinator.pending_count
    coordinator.remove_shard(victim)
    assert victim not in coordinator.workers
    assert coordinator.pending_count == pending_before
    report = coordinator.dispatch()
    assert report.query_count == len(graphs)
    assert report.all_delivered
    # A planned rebalance requeues the stranded batches, never loses them.
    assert report.lost_batches == 0
    assert report.requeued_batches > 0
    with pytest.raises(ValueError):
        one = _coordinator(shard_count=1)
        one.remove_shard(one.shard_ids[0])


# -- the load generator -----------------------------------------------------------


def test_arrival_times_are_seeded_and_rate_shaped(graphs):
    generator = OpenLoopLoadGenerator(graphs, rate=500.0, duration=2.0, seed=3)
    first = generator.arrival_times()
    second = OpenLoopLoadGenerator(graphs, rate=500.0, duration=2.0, seed=3).arrival_times()
    assert first == second
    assert all(0 <= t < 2.0 for t in first)
    assert first == sorted(first)
    # ~1000 expected arrivals; 5 sigma is ~160.
    assert 750 <= len(first) <= 1250
    different = OpenLoopLoadGenerator(graphs, rate=500.0, duration=2.0, seed=4).arrival_times()
    assert first != different


def test_bursty_arrivals_concentrate_in_the_on_window(graphs):
    generator = OpenLoopLoadGenerator(
        graphs,
        rate=400.0,
        duration=2.0,
        arrival="bursty",
        burst_factor=3.0,
        burst_period=0.5,
        burst_fraction=0.25,
        seed=9,
    )
    times = generator.arrival_times()
    in_burst = sum(1 for t in times if (t % 0.5) < 0.5 * 0.25)
    # The ON quarter of each period runs at 3x the average rate, so it should
    # hold about 75% of the arrivals; a uniform process would hold 25%.
    assert in_burst / len(times) > 0.5


def test_loadgen_validates_configuration(graphs):
    with pytest.raises(ValueError):
        OpenLoopLoadGenerator([], rate=10, duration=1)
    with pytest.raises(ValueError):
        OpenLoopLoadGenerator(graphs, rate=0, duration=1)
    with pytest.raises(ValueError):
        OpenLoopLoadGenerator(graphs, arrival="uniformish")
    with pytest.raises(ValueError):
        OpenLoopLoadGenerator(graphs, arrival="bursty", burst_fraction=1.5)


def test_saturating_load_sheds_and_reports_the_drop_rate():
    graph = circulant_expander(32)
    coordinator = _coordinator(
        shard_count=2,
        queue_capacity=2,
        admission_policy="reject",
        cache_capacity=2,
    )
    generator = OpenLoopLoadGenerator(
        [graph],
        workload_mix=(("permutation", {"shift": 1}),),
        rate=400.0,
        duration=0.25,
        dispatch_interval=0.25,
        seed=5,
    )
    slo = generator.run(coordinator)
    # One dispatch window, ~100 arrivals, one shard owns the single
    # fingerprint, and its queue holds 2: overload must shed.
    assert slo.offered > 10
    assert slo.rejected > 0
    assert slo.drop_rate > 0.5
    assert slo.completed == slo.admitted
    assert slo.completed <= 2 * len(slo.cluster_reports)
    rendered = slo.render()
    assert "[slo]" in rendered and "drop_rate" in rendered


def test_shed_oldest_under_saturation_counts_shed_not_rejected():
    graph = circulant_expander(32)
    coordinator = _coordinator(
        shard_count=2,
        queue_capacity=2,
        admission_policy="shed-oldest",
        cache_capacity=2,
    )
    generator = OpenLoopLoadGenerator(
        [graph],
        workload_mix=(("permutation", {"shift": 1}),),
        rate=300.0,
        duration=0.2,
        dispatch_interval=0.2,
        seed=6,
    )
    slo = generator.run(coordinator)
    assert slo.shed > 0
    assert slo.rejected == 0
    assert slo.completed == slo.admitted


def test_slo_report_has_latency_percentiles_and_shard_hit_rates(graphs):
    coordinator = _coordinator(shard_count=2)
    generator = OpenLoopLoadGenerator(
        graphs, rate=60.0, duration=0.3, dispatch_interval=0.1, seed=1
    )
    slo = generator.run(coordinator)
    assert slo.completed == slo.offered  # no bounds, nothing dropped
    assert slo.all_delivered
    assert slo.lost_batches == 0 and slo.failovers == 0
    summary = slo.summary()
    assert 0 < summary["p50_seconds"] <= summary["p95_seconds"] <= summary["p99_seconds"]
    assert summary["throughput_qps"] > 0
    hit_rates = slo.cache_hit_rate_by_shard()
    assert hit_rates and all(0.0 <= rate <= 1.0 for rate in hit_rates.values())


def test_remove_shard_requeues_even_into_full_queues():
    controller_graphs = [circulant_expander(32), circulant_expander(36)]
    coordinator = _coordinator(shard_count=2, queue_capacity=1, admission_policy="reject")
    for graph in controller_graphs:
        coordinator.submit(graph, permutation_workload(graph))
    pending_before = coordinator.pending_count
    offered_before = coordinator.admission.total_stats().offered
    coordinator.remove_shard(coordinator.shard_ids[0])
    # Nothing lost, and the move is not a second admission decision.
    assert coordinator.pending_count == pending_before
    assert coordinator.admission.total_stats().offered == offered_before
    report = coordinator.dispatch()
    assert report.query_count == pending_before
    assert report.all_delivered
    assert report.lost_batches == 0


def test_loadgen_rejects_nonpositive_burst_parameters(graphs):
    with pytest.raises(ValueError):
        OpenLoopLoadGenerator(graphs, arrival="bursty", burst_period=0.0)
    with pytest.raises(ValueError):
        OpenLoopLoadGenerator(graphs, arrival="bursty", burst_factor=-1.0)
