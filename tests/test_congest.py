"""Tests for the CONGEST simulator: network, primitives, and the path scheduler."""


import networkx as nx
import pytest

from repro.congest.algorithm import Mailbox, NodeAlgorithm, NodeState, Runner
from repro.congest.network import BandwidthExceeded, Network
from repro.congest.primitives import (
    assign_ranks,
    broadcast_value,
    build_bfs_tree,
    convergecast_sum,
    elect_leader,
)
from repro.congest.scheduler import ScheduledToken, schedule_tokens_along_paths


# -- network ------------------------------------------------------------------


def test_network_rejects_non_adjacent_send():
    network = Network(nx.path_graph(3))
    with pytest.raises(ValueError):
        network.send(0, 2, "x")


def test_network_enforces_one_message_per_edge_per_round():
    network = Network(nx.path_graph(3))
    network.send(0, 1, "first")
    with pytest.raises(BandwidthExceeded):
        network.send(0, 1, "second")
    network.deliver()
    network.send(0, 1, "next round is fine")


def test_network_enforces_message_word_budget():
    network = Network(nx.path_graph(2), words_per_message=2)
    with pytest.raises(BandwidthExceeded):
        network.send(0, 1, (1, 2, 3, 4, 5))


def test_network_delivers_to_inbox_and_counts():
    network = Network(nx.cycle_graph(4))
    network.broadcast_to_neighbors(0, "hello")
    network.deliver()
    assert len(network.inbox(1)) == 1
    assert network.inbox(1)[0].payload == "hello"
    assert network.total_messages == 2
    assert network.current_round == 1


# -- node algorithms -------------------------------------------------------------


class _EchoOnce(NodeAlgorithm):
    """Every node sends its id once and halts after hearing from all neighbours."""

    def initialize(self, state: NodeState, mailbox: Mailbox) -> None:
        state.memory["heard"] = set()
        mailbox.broadcast(("id", state.node))

    def on_round(self, state, inbox, mailbox) -> None:
        for message in inbox:
            state.memory["heard"].add(message.payload[1])
        if len(state.memory["heard"]) >= len(mailbox.neighbors()):
            state.halt()


def test_runner_completes_simple_algorithm():
    network = Network(nx.cycle_graph(6))
    result = Runner(network, _EchoOnce()).run()
    assert result.completed
    assert result.rounds <= 3
    for node in range(6):
        assert result.memory_of(node, "heard") == set(nx.cycle_graph(6).neighbors(node))


# -- primitives -------------------------------------------------------------------


def test_bfs_tree_depths_match_networkx(small_expander):
    bfs = build_bfs_tree(small_expander, root=0)
    reference = nx.single_source_shortest_path_length(small_expander, 0)
    assert bfs.depth == reference
    assert bfs.parent[0] is None


def test_bfs_round_count_is_near_diameter(small_expander):
    bfs = build_bfs_tree(small_expander, root=0)
    diameter = nx.diameter(small_expander)
    assert bfs.rounds <= 3 * diameter + 4


def test_broadcast_reaches_everyone(small_expander):
    received, rounds = broadcast_value(small_expander, 0, "payload")
    assert set(received) == set(small_expander.nodes())
    assert all(value == "payload" for value in received.values())
    assert rounds >= nx.diameter(small_expander)


def test_convergecast_sum(small_expander):
    values = {v: 1.0 for v in small_expander.nodes()}
    total, rounds = convergecast_sum(small_expander, 0, values)
    assert total == small_expander.number_of_nodes()
    assert rounds > 0


def test_leader_election_picks_minimum_id(small_expander):
    leader, _ = elect_leader(small_expander)
    assert leader == min(small_expander.nodes())


def test_assign_ranks_matches_sorted_order(small_expander):
    ranks, _ = assign_ranks(small_expander)
    ordered = sorted(small_expander.nodes())
    assert all(ranks[v] == i for i, v in enumerate(ordered))


# -- scheduler ---------------------------------------------------------------------


def test_scheduler_delivers_all_tokens_and_respects_fact_2_2():
    # Ten tokens all crossing the same middle edge of a path.
    path = list(range(6))
    tokens = [ScheduledToken(token_id=i, path=tuple(path)) for i in range(10)]
    result = schedule_tokens_along_paths(tokens)
    assert result.congestion == 10
    assert result.dilation == 5
    assert result.rounds <= result.quality_squared_bound
    assert all(round_ >= 1 for round_ in result.arrival_round.values())


def test_scheduler_handles_disjoint_paths_in_dilation_rounds():
    tokens = [ScheduledToken(token_id=i, path=(i * 10, i * 10 + 1, i * 10 + 2)) for i in range(5)]
    result = schedule_tokens_along_paths(tokens)
    assert result.rounds == 2
    assert result.congestion == 1


def test_scheduler_empty_input():
    result = schedule_tokens_along_paths([])
    assert result.rounds == 0
    assert result.quality == 0
