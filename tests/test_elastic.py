"""Tests for the elastic tier: ring replication, autoscaler, faults, failover.

The correctness bar throughout is the ISSUE's zero-lost-batch guarantee: any
seeded kill/rejoin cycle under open-loop load must end with every admitted
batch served exactly once in the reports (``lost_batches == 0``,
``completed == admitted``), on the local and the tcp transport alike.
"""

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ConsistentHashRing,
    OpenLoopLoadGenerator,
    ShardCrashed,
)
from repro.elastic import (
    AUTOSCALER_POLICIES,
    Autoscaler,
    AutoscalerConfig,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from repro.graphs.generators import random_regular_expander
from repro.metrics import MetricsRegistry
from repro.planner import ExecutionPlan
from repro.workloads import permutation_workload

PLAN = ExecutionPlan(backend="deterministic", max_workers=2)


@pytest.fixture(scope="module")
def graphs():
    return [random_regular_expander(48, degree=6, seed=seed) for seed in range(3)]


def _coordinator(**overrides):
    defaults = dict(
        shard_count=3,
        cache_capacity=8,
        default_plan=PLAN,
        metrics=MetricsRegistry(),
    )
    defaults.update(overrides)
    return ClusterCoordinator(**defaults)


# -- ring.owners -------------------------------------------------------------------


def test_owners_first_entry_is_assign():
    ring = ConsistentHashRing(["a", "b", "c", "d"], vnodes=32)
    for index in range(100):
        key = f"key-{index}"
        owners = ring.owners(key, r=3)
        assert owners[0] == ring.assign(key)
        assert len(owners) == len(set(owners)) == 3


def test_owners_primary_is_stable_as_r_grows():
    ring = ConsistentHashRing(["a", "b", "c", "d"], vnodes=32)
    for index in range(50):
        key = f"key-{index}"
        base = ring.owners(key, r=1)
        for r in (2, 3, 4):
            wider = ring.owners(key, r=r)
            # Growing r only appends new replicas; it never reshuffles.
            assert wider[: len(base)] == base
            base = wider


def test_owners_clamps_to_shard_count_and_validates():
    ring = ConsistentHashRing(["a", "b"], vnodes=16)
    assert sorted(ring.owners("k", r=5)) == ["a", "b"]
    with pytest.raises(ValueError):
        ring.owners("k", r=0)
    with pytest.raises(ValueError):
        ConsistentHashRing([], vnodes=16).owners("k")


# -- autoscaler policies -----------------------------------------------------------


def test_autoscaler_config_validation():
    with pytest.raises(ValueError, match="policy"):
        AutoscalerConfig(policy="bogus")
    with pytest.raises(ValueError):
        AutoscalerConfig(min_shards=0)
    with pytest.raises(ValueError):
        AutoscalerConfig(min_shards=4, max_shards=2)
    with pytest.raises(ValueError):
        AutoscalerConfig(scale_down_depth=9.0, scale_up_depth=2.0)
    with pytest.raises(ValueError):
        AutoscalerConfig(target_shards=9, max_shards=4)
    assert set(AUTOSCALER_POLICIES) == {"fixed", "queue-depth", "slo"}


def test_fixed_policy_converges_on_target_and_holds():
    with _coordinator(shard_count=2) as coordinator:
        scaler = Autoscaler(
            coordinator,
            AutoscalerConfig(
                policy="fixed",
                min_shards=1,
                max_shards=6,
                target_shards=4,
                evaluate_interval=0.1,
                cooldown=0.0,
            ),
        )
        times = iter(x / 10 for x in range(1, 20))
        while coordinator.shard_count != 4:
            scaler.evaluate(next(times))
        assert coordinator.shard_count == 4
        assert scaler.evaluate(next(times)) is None  # satisfied: no event
        assert [event.direction for event in scaler.events] == ["up", "up"]


def test_queue_depth_policy_scales_up_then_down(graphs):
    with _coordinator(shard_count=2) as coordinator:
        scaler = Autoscaler(
            coordinator,
            AutoscalerConfig(
                policy="queue-depth",
                min_shards=2,
                max_shards=4,
                scale_up_depth=2.0,
                scale_down_depth=0.5,
                evaluate_interval=0.1,
                cooldown=0.0,
            ),
        )
        for index in range(10):
            graph = graphs[index % len(graphs)]
            coordinator.submit(graph, permutation_workload(graph, shift=1 + index % 3))
        event = scaler.evaluate(0.1)
        assert event is not None and event.direction == "up"
        assert coordinator.shard_count == 3
        coordinator.dispatch()
        # Queue is empty now: scale back down, shedding the newest shard.
        event = scaler.evaluate(0.3)
        assert event is not None and event.direction == "down"
        assert coordinator.shard_count == 2


def test_cooldown_and_bounds_hold_the_scaler(graphs):
    with _coordinator(shard_count=2) as coordinator:
        scaler = Autoscaler(
            coordinator,
            AutoscalerConfig(
                policy="queue-depth",
                min_shards=2,
                max_shards=3,
                scale_up_depth=1.0,
                scale_down_depth=0.0,
                evaluate_interval=0.1,
                cooldown=1.0,
            ),
        )
        for index in range(12):
            graph = graphs[index % len(graphs)]
            coordinator.submit(graph, permutation_workload(graph, shift=1 + index % 3))
        assert scaler.evaluate(0.1) is not None
        # Inside the cooldown window: the still-deep queue must not trigger.
        assert scaler.evaluate(0.5) is None
        # After cooldown the max_shards bound caps any further growth.
        assert scaler.evaluate(1.2) is None
        assert coordinator.shard_count == 3
        coordinator.dispatch()


def test_slo_policy_reacts_to_observed_p99(graphs):
    with _coordinator(shard_count=2) as coordinator:
        scaler = Autoscaler(
            coordinator,
            AutoscalerConfig(
                policy="slo",
                min_shards=2,
                max_shards=4,
                target_p99=1e-9,  # any real latency violates it
                evaluate_interval=0.1,
                cooldown=0.0,
            ),
        )
        assert scaler.evaluate(0.1) is None  # no signal yet: hold
        coordinator.submit(graphs[0], permutation_workload(graphs[0], shift=1))
        scaler.observe(coordinator.dispatch())
        event = scaler.evaluate(0.3)
        assert event is not None and event.direction == "up"
        assert "p99" in event.reason


# -- fault plans -------------------------------------------------------------------


def test_fault_event_and_plan_validation():
    with pytest.raises(ValueError, match="kind"):
        FaultEvent(at=0.1, kind="meteor", shard="shard-0")
    with pytest.raises(ValueError):
        FaultEvent(at=-1.0, kind="crash", shard="shard-0")
    with pytest.raises(ValueError):
        FaultEvent(at=0.1, kind="slow", shard="shard-0")  # slow needs seconds
    with pytest.raises(ValueError):
        FaultPlan.kill_and_rejoin("shard-0", kill_at=0.5, rejoin_at=0.5)
    plan = FaultPlan(
        events=(
            FaultEvent(at=0.9, kind="rejoin", shard="shard-0"),
            FaultEvent(at=0.2, kind="crash", shard="shard-0"),
        )
    )
    assert [event.at for event in plan.events] == [0.2, 0.9]  # sorted on build
    assert [event.kind for event in plan.due(0.0, 0.5)] == ["crash"]
    assert plan.due(0.2, 0.9)[-1].kind == "rejoin"  # (start, end] window


def test_injector_applies_crash_and_rejoin_and_skips_unknown_shards(graphs):
    with _coordinator(shard_count=2) as coordinator:
        plan = FaultPlan(
            events=(
                FaultEvent(at=0.1, kind="crash", shard="shard-0"),
                FaultEvent(at=0.2, kind="crash", shard="no-such-shard"),
                FaultEvent(at=0.3, kind="rejoin", shard="shard-0"),
            )
        )
        injector = FaultInjector(coordinator, plan)
        crash = injector.advance(0.15)
        assert [entry.applied for entry in crash] == [True]
        assert not coordinator.workers["shard-0"].healthy()
        skipped = injector.advance(0.25)
        assert [entry.applied for entry in skipped] == [False]
        assert skipped[0].note == "not serving"
        coordinator.check_health()  # reaps the crashed shard
        assert "shard-0" not in coordinator.workers
        rejoined = injector.advance(0.35)
        assert [entry.applied for entry in rejoined] == [True]
        assert "shard-0" in coordinator.workers
        assert injector.exhausted


def test_slow_and_partition_faults_and_heal(graphs):
    with _coordinator(shard_count=1) as coordinator:
        worker = coordinator.workers["shard-0"]
        coordinator.submit(graphs[0], permutation_workload(graphs[0], shift=1))
        worker.inject_fault("partition")
        assert not worker.healthy()
        with pytest.raises(ConnectionError):
            coordinator.process_shard("shard-0", coordinator.drain_slices()["shard-0"])
        worker.inject_fault("heal")
        assert worker.healthy()
        worker.inject_fault("slow", seconds=0.01)
        coordinator.submit(graphs[0], permutation_workload(graphs[0], shift=1))
        report = coordinator.dispatch()
        assert report.query_count == 1 and report.all_delivered
        assert report.dispatch_seconds >= 0.01  # the injected floor shows up
        worker.inject_fault("crash")
        with pytest.raises(ShardCrashed):
            worker.process([])
        with pytest.raises(ValueError):
            worker.inject_fault("meteor")


# -- failover under load -----------------------------------------------------------


def _chaos_run(transport: str, seed: int = 3):
    graphs = [random_regular_expander(48, degree=6, seed=s) for s in range(3)]
    coordinator = ClusterCoordinator(
        shard_count=3,
        cache_capacity=8,
        default_plan=PLAN,
        metrics=MetricsRegistry(),
        transport=transport,
    )
    generator = OpenLoopLoadGenerator(
        graphs, rate=80.0, duration=0.6, dispatch_interval=0.05, seed=seed
    )
    plan = FaultPlan.kill_and_rejoin("shard-1", kill_at=0.2, rejoin_at=0.45)
    with coordinator:
        report = generator.run(coordinator, fault_plan=plan)
    return report


def test_local_kill_rejoin_loses_zero_batches():
    report = _chaos_run("local")
    assert report.lost_batches == 0
    assert report.completed == report.admitted
    assert report.all_delivered
    assert report.failovers >= 1
    applied = [row for row in report.fault_events if row["applied"]]
    assert [row["kind"] for row in applied] == ["crash", "rejoin"]
    # The SLO report separates recovery cost from steady-state latency.
    assert report.failover_windows
    assert report.clean_query_seconds and report.failover_query_seconds


def test_seeded_chaos_runs_are_deterministic():
    first = _chaos_run("local")
    second = _chaos_run("local")
    assert first.completed == second.completed
    assert first.failovers == second.failovers
    assert first.requeued_batches == second.requeued_batches
    assert [r.signature() for r in first.cluster_reports] == [
        r.signature() for r in second.cluster_reports
    ]


@pytest.mark.chaos
def test_tcp_kill_rejoin_loses_zero_batches():
    """The tcp crash SIGKILLs a real shard server process; still zero lost."""
    report = _chaos_run("tcp")
    assert report.lost_batches == 0
    assert report.completed == report.admitted
    assert report.all_delivered
    assert report.failovers >= 1


def test_dispatch_failover_requeues_in_flight_batches(graphs):
    with _coordinator(shard_count=3) as coordinator:
        for graph in graphs:
            for shift in (1, 2):
                coordinator.submit(graph, permutation_workload(graph, shift=shift))
        victim = coordinator.shard_ids[0]
        coordinator.workers[victim].inject_fault("crash")
        report = coordinator.dispatch()  # discovers the crash mid-dispatch
        assert report.query_count == len(graphs) * 2
        assert report.all_delivered
        assert report.lost_batches == 0
        assert coordinator.failovers == 1
        assert victim not in coordinator.workers
        totals = coordinator.metrics.as_dict()
        requeued = totals.get("repro_cluster_requeued_batches_total", {})
        assert requeued.get("reason=failover", 0.0) == report.requeued_batches


def test_batches_are_lost_only_when_the_whole_ring_dies(graphs):
    with _coordinator(shard_count=1) as coordinator:
        coordinator.submit(graphs[0], permutation_workload(graphs[0], shift=1))
        coordinator.workers["shard-0"].inject_fault("crash")
        report = coordinator.dispatch()
        assert report.query_count == 0
        assert report.lost_batches == 1  # no survivor to requeue onto
        assert coordinator.shard_count == 0


def test_heartbeat_reports_and_check_health_reaps(graphs):
    with _coordinator(shard_count=2) as coordinator:
        assert coordinator.heartbeat() == {"shard-0": True, "shard-1": True}
        coordinator.workers["shard-1"].inject_fault("crash")
        assert coordinator.heartbeat() == {"shard-0": True, "shard-1": False}
        health = coordinator.check_health()
        assert health["shard-1"] is False
        assert "shard-1" not in coordinator.workers
        with pytest.raises(ValueError):
            coordinator.rejoin_shard("shard-0")  # still serving
        coordinator.rejoin_shard("shard-1")
        assert coordinator.heartbeat() == {"shard-0": True, "shard-1": True}


# -- hot-key replication -----------------------------------------------------------


def _hammer(coordinator, graph, rounds=3, shifts=(1, 2)):
    reports = []
    for _ in range(rounds):
        for shift in shifts:
            coordinator.submit(graph, permutation_workload(graph, shift=shift))
        reports.append(coordinator.dispatch())
    return reports


def test_replication_requires_sane_knobs():
    with pytest.raises(ValueError):
        ClusterCoordinator(shard_count=2, replication_factor=0)
    with pytest.raises(ValueError):
        ClusterCoordinator(shard_count=2, hot_key_threshold=0.0)
    with pytest.raises(ValueError):
        ClusterCoordinator(shard_count=2, hot_key_alpha=1.5)


def test_hot_keys_replicate_and_reads_spread(graphs):
    metrics = MetricsRegistry()
    with _coordinator(
        shard_count=3,
        metrics=metrics,
        replication_factor=2,
        hot_key_threshold=1.0,
    ) as coordinator:
        _hammer(coordinator, graphs[0], rounds=4)
        replicated = coordinator.replicated_keys()
        assert len(replicated) == 1
        [(fingerprint, replicas)] = replicated.items()
        assert len(replicas) == 1
        assert replicas[0] != coordinator.ring.assign(fingerprint)
        publishes = metrics.as_dict().get("repro_cluster_replica_publishes_total", {})
        assert sum(publishes.values()) >= 1
        # Reads round-robin over primary + replica once the replica is warm.
        reports = _hammer(coordinator, graphs[0], rounds=2)
        served = set()
        for report in reports:
            served.update(report.shard_reports)
        assert len(served) == 2
        reads = metrics.as_dict().get("repro_cluster_replica_reads_total", {})
        assert sum(reads.values()) >= 1
        # Replica serves from its adopted artifact: warm reads stay cache hits.
        assert all(r.cache_hits == r.query_count for r in reports)
        assert all(r.preprocess_rounds_incurred == 0 for r in reports)


def test_replicated_reads_keep_signature_parity(graphs):
    """R=2 spreads reads but must not change what any query returns."""

    def run(replication_factor):
        with _coordinator(
            shard_count=3,
            replication_factor=replication_factor,
            hot_key_threshold=1.0,
        ) as coordinator:
            return _hammer(coordinator, graphs[0], rounds=4)

    base, replicated = run(1), run(2)
    for lhs, rhs in zip(base, replicated):
        assert lhs.all_delivered and rhs.all_delivered
        assert lhs.query_count == rhs.query_count
        # Per-query outcomes agree even when a replica served the read: the
        # merged semantic plan ids and delivered totals are identical.
        lhs_sig, rhs_sig = lhs.signature(), rhs.signature()

        def merge(sig, key):
            return sum(shard[key] for shard in sig.values())

        for key in ("queries", "delivered", "total_query_rounds"):
            assert merge(lhs_sig, key) == merge(rhs_sig, key)
        assert {p for s in lhs_sig.values() for p in s["plans"]} == {
            p for s in rhs_sig.values() for p in s["plans"]
        }


def test_membership_changes_invalidate_replicas(graphs):
    with _coordinator(
        shard_count=3, replication_factor=2, hot_key_threshold=1.0
    ) as coordinator:
        _hammer(coordinator, graphs[0], rounds=3)
        assert coordinator.replicated_keys()
        coordinator.add_shard()
        assert not coordinator.replicated_keys()  # stale placements dropped
        # The next dispatch cycle re-publishes against the new ring.
        _hammer(coordinator, graphs[0], rounds=2)
        assert coordinator.replicated_keys()


# -- elasticity rides the warm plane ----------------------------------------------


def test_autoscaler_scale_up_causes_zero_extra_preprocess_rounds(graphs):
    with _coordinator(shard_count=2) as coordinator:
        scaler = Autoscaler(
            coordinator,
            AutoscalerConfig(
                policy="fixed",
                min_shards=2,
                max_shards=4,
                target_shards=3,
                evaluate_interval=0.1,
                cooldown=0.0,
            ),
        )
        for graph in graphs:
            coordinator.submit(graph, permutation_workload(graph, shift=1))
        coordinator.dispatch()  # warm the caches
        event = scaler.evaluate(0.5)
        assert event is not None and event.direction == "up"
        for graph in graphs:
            coordinator.submit(graph, permutation_workload(graph, shift=2))
        report = coordinator.dispatch()
        assert report.cache_hits == report.query_count
        assert report.preprocess_rounds_incurred == 0


@pytest.mark.chaos
def test_tcp_warm_handoff_keeps_full_cache_hits_and_signatures():
    """Satellite: scale events over tcp ride the shm plane, byte-identically."""
    graphs = [random_regular_expander(48, degree=6, seed=s) for s in range(3)]
    metrics = MetricsRegistry()
    with ClusterCoordinator(
        shard_count=2,
        cache_capacity=8,
        default_plan=PLAN,
        metrics=metrics,
        transport="tcp",
    ) as coordinator:

        def warm_dispatch(shift):
            for graph in graphs:
                coordinator.submit(graph, permutation_workload(graph, shift=shift))
            return coordinator.dispatch()

        warm_dispatch(1)  # cold fill
        before = warm_dispatch(2)
        assert before.cache_hits == before.query_count
        added = coordinator.add_shard()
        assert added is not None
        grown = warm_dispatch(2)
        assert grown.cache_hits == grown.query_count
        assert grown.preprocess_rounds_incurred == 0
        coordinator.remove_shard(coordinator.shard_ids[-1])
        shrunk = warm_dispatch(2)
        assert shrunk.cache_hits == shrunk.query_count
        assert shrunk.preprocess_rounds_incurred == 0
        # Same membership as before the scale events: byte-identical dispatch.
        assert shrunk.signature() == before.signature()
        handoffs = metrics.as_dict().get("repro_cluster_warm_handoffs_total", {})
        assert handoffs and handoffs.get("path=shm", 0.0) == sum(handoffs.values())
