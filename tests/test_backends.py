"""Tests for the pluggable backend layer: registry, adapters, compare_batch."""

import pytest

from repro.applications.clique import enumerate_cliques
from repro.applications.mst import boruvka_mst
from repro.applications.sorting_equivalence import (
    routing_oracle_from_backend,
    sorting_via_routing,
)
from repro.backends import (
    DeterministicBackend,
    PreprocessInfo,
    RouteResult,
    RoutingBackend,
    available_backends,
    get_backend,
    register_backend,
    supports_artifacts,
)
from repro.graphs.generators import circulant_expander, planted_clique_graph
from repro.service import RoutingService
from repro.workloads import (
    hotspot_workload,
    make_workload,
    permutation_workload,
)

ALL_BACKENDS = ["deterministic", "direct", "randomized-gks", "rebuild-per-query"]


@pytest.fixture(scope="module")
def graph():
    return circulant_expander(48)


@pytest.fixture(scope="module")
def workloads(graph):
    return [
        permutation_workload(graph, shift=3),
        hotspot_workload(graph, load=2, seed=1),
        make_workload("adversarial-bipartite", graph, seed=2),
    ]


# -- registry ----------------------------------------------------------------------


def test_all_four_backends_are_registered():
    assert available_backends() == ALL_BACKENDS


def test_get_backend_rejects_unknown_names(graph):
    with pytest.raises(ValueError, match="unknown backend"):
        get_backend("nonexistent", graph)


def test_register_backend_rejects_name_collisions():
    with pytest.raises(ValueError, match="already registered"):
        register_backend("direct", lambda graph: None)


def test_artifact_capability_detection(graph):
    assert supports_artifacts(DeterministicBackend(graph))
    assert not supports_artifacts(get_backend("direct", graph))
    assert not supports_artifacts(get_backend("randomized-gks", graph))
    assert not supports_artifacts(get_backend("rebuild-per-query", graph))


# -- adapter equivalence -----------------------------------------------------------


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_every_backend_delivers_on_permutation_and_hotspot(name, graph):
    backend = get_backend(name, graph)
    assert isinstance(backend, RoutingBackend)
    info = backend.preprocess()
    assert isinstance(info, PreprocessInfo)
    assert info.backend == name
    assert info.rounds >= 0

    for workload in (permutation_workload(graph, shift=5), hotspot_workload(graph, load=2)):
        result = backend.route(list(workload.requests), load=workload.load)
        assert isinstance(result, RouteResult)
        assert result.backend == name
        assert result.all_delivered
        assert result.total_tokens == len(workload.requests)
        assert result.query_rounds > 0
        # The shared schema: every row has the four comparison columns.
        row = result.as_row()
        assert {"backend", "delivered", "total", "query_rounds", "preprocess_rounds"} <= set(row)


def test_only_the_deterministic_backend_has_preprocess_rounds(graph):
    for name in ALL_BACKENDS:
        backend = get_backend(name, graph)
        info = backend.preprocess()
        if name == "deterministic":
            assert info.rounds > 0
        else:
            assert info.rounds == 0


def test_deterministic_backend_matches_raw_router(graph, preprocessed_router):
    backend = DeterministicBackend(preprocessed_router.graph, router=preprocessed_router)
    workload = permutation_workload(preprocessed_router.graph, shift=2)
    result = backend.route(list(workload.requests))
    direct = preprocessed_router.route(list(workload.requests))
    assert result.query_rounds == direct.query_rounds
    assert result.preprocess_rounds == direct.preprocessing_rounds
    assert result.raw.breakdown == direct.breakdown
    assert [t.current_vertex for t in result.tokens] == [
        t.current_vertex for t in direct.tokens
    ]


# -- service integration -----------------------------------------------------------


def test_service_routes_through_named_backends(graph):
    service = RoutingService(epsilon=0.5)
    workload = permutation_workload(graph, shift=7)
    for name in ALL_BACKENDS:
        outcome = service.route(graph, workload, backend=name)
        assert outcome.backend == name
        assert outcome.all_delivered


def test_backend_queries_never_share_cache_keys(graph):
    service = RoutingService(epsilon=0.5)
    fingerprints = {service.fingerprint(graph, backend=name) for name in ALL_BACKENDS}
    assert len(fingerprints) == len(ALL_BACKENDS)
    with_params = service.fingerprint(graph, backend="randomized-gks", backend_params={"seed": 3})
    assert with_params not in fingerprints


def test_compare_batch_round_counts_match_direct_routing(graph, workloads):
    service = RoutingService(epsilon=0.5, max_workers=4)
    comparison = service.compare_batch(graph, workloads)
    assert comparison.backends == ALL_BACKENDS
    assert comparison.all_delivered
    assert len(comparison.entries) == len(ALL_BACKENDS) * len(workloads)

    for name in ALL_BACKENDS:
        backend = get_backend(name, graph)
        backend.preprocess()
        for entry in (e for e in comparison.entries if e.backend == name):
            workload = workloads[entry.workload_index]
            assert entry.workload == workload.name
            direct = backend.route(list(workload.requests), load=workload.load)
            assert entry.result.query_rounds == direct.query_rounds
            assert entry.result.delivered == direct.delivered


def test_compare_batch_warm_repeat_preprocesses_nothing_deterministic(graph, workloads):
    service = RoutingService(epsilon=0.5)
    cold = service.compare_batch(graph, workloads)
    assert cold.batch_reports["deterministic"].preprocess_rounds_incurred > 0
    warm = service.compare_batch(graph, workloads)
    assert warm.batch_reports["deterministic"].preprocess_rounds_incurred == 0
    assert warm.batch_reports["deterministic"].preprocess_rounds_reused > 0
    # Round counts are reproducible across the cold and warm comparison.
    assert [e.result.query_rounds for e in warm.entries] == [
        e.result.query_rounds for e in cold.entries
    ]


def test_comparison_report_renders_side_by_side_tables(graph, workloads):
    service = RoutingService(epsilon=0.5)
    comparison = service.compare_batch(graph, workloads[:2], backends=["direct", "deterministic"])
    rendered = comparison.render()
    assert "query_rounds" in rendered
    assert "direct" in rendered and "deterministic" in rendered
    pivot = comparison.pivot("query_rounds")
    assert len(pivot) == 2
    assert {"workload", "direct", "deterministic"} <= set(pivot[0])
    summary = comparison.summary_rows()
    assert {row["backend"] for row in summary} == {"direct", "deterministic"}


# -- applications accept any backend -----------------------------------------------


def test_boruvka_mst_same_tree_under_every_backend(weighted_graph):
    import networkx as nx

    expected = sorted(
        (min(u, v), max(u, v)) for u, v in nx.minimum_spanning_tree(weighted_graph).edges()
    )
    expected_weight = sum(
        weighted_graph[u][v].get("weight", 1) for u, v in expected
    )
    rounds_by_backend = {}
    for name in ("deterministic", "direct", "randomized-gks"):
        result = boruvka_mst(weighted_graph, backend=name)
        assert result.total_weight == pytest.approx(expected_weight)
        rounds_by_backend[name] = result.rounds
    assert all(rounds > 0 for rounds in rounds_by_backend.values())


def test_boruvka_mst_string_backend_respects_epsilon_and_router(weighted_graph):
    fine = boruvka_mst(weighted_graph, epsilon=0.7, backend="deterministic")
    default = boruvka_mst(weighted_graph, epsilon=0.5, backend="deterministic")
    assert fine.preprocessing_rounds != default.preprocessing_rounds

    router = DeterministicBackend(weighted_graph, epsilon=0.5).router
    router.preprocess()
    reused = boruvka_mst(weighted_graph, router=router, backend="deterministic")
    assert reused.preprocessing_rounds == router.preprocess_ledger.total("preprocess")
    assert reused.total_weight == default.total_weight


def test_enumerate_cliques_accepts_a_measured_backend(graph):
    planted = planted_clique_graph(32, 4, p=0.1, seed=1)
    estimated = enumerate_cliques(planted, k=3)
    measured = enumerate_cliques(planted, k=3, backend=get_backend("direct", graph))
    assert measured.cliques == estimated.cliques
    assert measured.rounds != estimated.rounds  # measured cost, not the polylog estimate


def test_sorting_via_routing_through_a_backend_oracle(graph):
    vertices = sorted(graph.nodes())[:8]
    items_at = {vertex: [(vertex * 31 % 7, f"item-{vertex}")] for vertex in vertices}
    oracle = routing_oracle_from_backend(get_backend("direct", graph))
    record = sorting_via_routing(items_at, oracle, load=1)
    assert record.routing_calls == record.network_depth
    assert oracle.query_rounds > 0
    keys = [key for vertex in vertices for key, _ in record.placement[vertex]]
    assert keys == sorted(keys)
