"""Tests for the versioned wire schema: round trips, versioning, tolerance.

The load-bearing property is ``from_wire(to_wire(x)) == x`` for *every*
registered message type — checked with hypothesis over generated instances,
and with a coverage assertion that the strategy catalog and the message
registry agree (a new message type cannot ship without a round-trip
strategy).  On top of that: schema-version rejection, unknown-field
tolerance (rolling upgrades), JSON-safety validation, and the parity
guarantees the cluster tier relies on — reconstructed graphs fingerprint
identically and :meth:`BatchReport.signature` survives the wire byte for
byte.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import random_regular_expander
from repro.metrics import MetricsRegistry
from repro.planner import ExecutionPlan
from repro.service.fingerprint import graph_fingerprint
from repro.service.service import RoutingService
from repro.wire import (
    CODEC_JSON,
    HAVE_MSGPACK,
    WIRE_VERSION,
    ArtifactAdoptReply,
    ArtifactAdoptRequest,
    ArtifactExportReply,
    ArtifactExportRequest,
    DispatchDoneReply,
    DispatchRequest,
    DispatchShardReply,
    ErrorReply,
    FaultInjectReply,
    FaultInjectRequest,
    HeartbeatReply,
    HeartbeatRequest,
    Hello,
    HelloReply,
    JournalAdmit,
    JournalCheckpoint,
    JournalComplete,
    NeedGraphReply,
    Ping,
    Pong,
    SchemaVersionError,
    ShardProcessReply,
    ShardProcessRequest,
    ShardStatsReply,
    ShardStatsRequest,
    Shutdown,
    ShutdownAck,
    StatsReply,
    StatsRequest,
    SubmitReply,
    SubmitRequest,
    WireAdmissionStats,
    WireBatchReport,
    WireClusterReport,
    WireDecodeError,
    WireEncodeError,
    WireGraph,
    WireMessage,
    WirePlan,
    WireQueryResult,
    WireRequest,
    WireRouteResult,
    WireShardQuery,
    decode_message,
    decode_payload,
    encode_payload,
    message_from_wire,
)
from repro.wire.messages import _MESSAGE_TYPES
from repro.workloads import permutation_workload

# -- strategies --------------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)
names = st.text(min_size=1, max_size=12)
params = st.dictionaries(names, scalars, max_size=3)


@st.composite
def wire_graphs(draw):
    nodes = tuple(sorted(draw(st.sets(st.integers(0, 50), max_size=8))))
    edges = []
    if len(nodes) >= 2:
        for pair in draw(
            st.lists(st.tuples(st.sampled_from(nodes), st.sampled_from(nodes)), max_size=6)
        ):
            if pair[0] != pair[1]:
                edges.append((pair[0], pair[1], {"weight": draw(st.integers(1, 9))}))
    return WireGraph(nodes=nodes, edges=tuple(edges))


@st.composite
def wire_requests(draw):
    return WireRequest(
        source=draw(st.integers(0, 50)),
        destination=draw(st.integers(0, 50)),
        payload=draw(scalars),
    )


@st.composite
def wire_plans(draw):
    return WirePlan(
        backend=draw(names),
        backend_params=draw(params),
        kernel=draw(names),
        parallelism=draw(st.sampled_from(["serial", "threads", "processes"])),
        max_workers=draw(st.none() | st.integers(1, 16)),
        chunk_size=draw(st.none() | st.integers(1, 64)),
        shard_hint=draw(st.none() | names),
        policy=draw(names),
        reason=draw(st.text(max_size=20)),
    )


@st.composite
def wire_shard_queries(draw):
    return WireShardQuery(
        fingerprint=draw(names),
        graph=draw(wire_graphs()),
        requests=tuple(draw(st.lists(wire_requests(), max_size=3))),
        load=draw(st.none() | st.integers(1, 8)),
        backend=draw(names),
        backend_params=draw(params),
        workload=draw(st.text(max_size=12)),
        plan=draw(st.none() | wire_plans()),
        idempotency_key=draw(st.text(max_size=16)),
    )


@st.composite
def wire_journal_checkpoints(draw):
    stats_rows = st.fixed_dictionaries(
        {
            "offered": st.integers(0, 1000),
            "accepted": st.integers(0, 1000),
            "rejected": st.integers(0, 1000),
            "shed": st.integers(0, 1000),
        }
    )
    return JournalCheckpoint(
        shard_ids=tuple(draw(st.lists(names, max_size=3))),
        next_shard_index=draw(st.integers(0, 64)),
        seen_fingerprints=tuple(draw(st.lists(names, max_size=3))),
        pending=tuple(draw(st.lists(wire_shard_queries(), max_size=2))),
        completed_keys=tuple(draw(st.lists(names, max_size=3))),
        warm=tuple(draw(st.lists(wire_shard_queries(), max_size=2))),
        auto_key_counter=draw(st.integers(0, 10_000)),
        admission=draw(st.dictionaries(names, stats_rows, max_size=2)),
        lost_batches=draw(st.integers(0, 100)),
        requeued_batches=draw(st.integers(0, 100)),
        failovers=draw(st.integers(0, 100)),
        duplicate_results=draw(st.integers(0, 100)),
        hot_ewma=draw(st.dictionaries(names, st.floats(0, 100, allow_nan=False), max_size=2)),
        replicas=draw(
            st.dictionaries(names, st.lists(names, max_size=2).map(tuple), max_size=2)
        ),
        planner_state=draw(st.none() | st.dictionaries(names, params, max_size=2)),
        planner_version=draw(st.integers(0, 100)),
    )


@st.composite
def wire_route_results(draw):
    return WireRouteResult(
        backend=draw(names),
        delivered=draw(st.integers(0, 1000)),
        total_tokens=draw(st.integers(0, 1000)),
        query_rounds=draw(st.integers(0, 1000)),
        preprocess_rounds=draw(st.integers(0, 1000)),
        load=draw(st.integers(1, 8)),
        extra=draw(params),
    )


@st.composite
def wire_query_results(draw):
    return WireQueryResult(
        query_id=draw(st.integers(0, 10_000)),
        fingerprint=draw(names),
        backend=draw(names),
        outcome=draw(wire_route_results()),
        cache_hit=draw(st.booleans()),
        seconds=draw(st.floats(0, 10, allow_nan=False)),
        workload=draw(st.text(max_size=12)),
        plan=draw(st.none() | wire_plans()),
    )


@st.composite
def wire_batch_reports(draw):
    return WireBatchReport(
        results=tuple(draw(st.lists(wire_query_results(), max_size=3))),
        distinct_graphs=draw(st.integers(0, 100)),
        cache_hits=draw(st.integers(0, 100)),
        cache_misses=draw(st.integers(0, 100)),
        preprocess_rounds_incurred=draw(st.integers(0, 100)),
        preprocess_rounds_reused=draw(st.integers(0, 100)),
        preprocess_seconds=draw(st.floats(0, 10, allow_nan=False)),
        route_seconds=draw(st.floats(0, 10, allow_nan=False)),
        wall_seconds=draw(st.floats(0, 10, allow_nan=False)),
    )


@st.composite
def wire_admission_stats(draw):
    return WireAdmissionStats(
        offered=draw(st.integers(0, 1000)),
        accepted=draw(st.integers(0, 1000)),
        rejected=draw(st.integers(0, 1000)),
        shed=draw(st.integers(0, 1000)),
    )


@st.composite
def wire_cluster_reports(draw):
    return WireClusterReport(
        shard_reports=draw(st.dictionaries(names, wire_batch_reports(), max_size=2)),
        dispatch_seconds=draw(st.floats(0, 10, allow_nan=False)),
        admission=draw(wire_admission_stats()),
        lost_batches=draw(st.integers(0, 100)),
        requeued_batches=draw(st.integers(0, 100)),
    )


#: One instance strategy per registered wire message type.
MESSAGE_STRATEGIES = {
    "graph": wire_graphs(),
    "request": wire_requests(),
    "plan": wire_plans(),
    "shard-query": wire_shard_queries(),
    "route-result": wire_route_results(),
    "query-result": wire_query_results(),
    "batch-report": wire_batch_reports(),
    "admission-stats": wire_admission_stats(),
    "cluster-report": wire_cluster_reports(),
    "ping": st.just(Ping()),
    "pong": st.just(Pong()),
    "shutdown": st.just(Shutdown()),
    "shutdown-ack": st.just(ShutdownAck()),
    "shard-stats-request": st.just(ShardStatsRequest()),
    "stats-request": st.just(StatsRequest()),
    "error": st.builds(ErrorReply, code=names, message=st.text(max_size=30)),
    "hello": st.builds(
        Hello,
        codecs=st.lists(st.sampled_from(["json", "msgpack"]), min_size=1, max_size=2).map(tuple),
        features=st.lists(names, max_size=3).map(tuple),
    ),
    "hello-reply": st.builds(
        HelloReply,
        codec=st.sampled_from(["json", "msgpack"]),
        features=st.lists(names, max_size=3).map(tuple),
    ),
    "need-graph": st.builds(
        NeedGraphReply, fingerprints=st.lists(names, max_size=3).map(tuple)
    ),
    "shard-process": st.builds(
        ShardProcessRequest,
        queries=st.lists(wire_shard_queries(), max_size=2).map(tuple),
        graphs=st.dictionaries(names, wire_graphs(), max_size=2),
    ),
    "shard-report": st.builds(ShardProcessReply, report=wire_batch_reports()),
    "shard-stats": st.builds(ShardStatsReply, row=params),
    "submit": st.builds(
        SubmitRequest,
        graph=wire_graphs(),
        requests=st.lists(wire_requests(), max_size=3).map(tuple),
        load=st.none() | st.integers(1, 8),
        backend=st.none() | names,
        backend_params=st.none() | params,
        workload=st.text(max_size=12),
        deadline=st.none() | st.floats(0, 10, allow_nan=False),
        idempotency_key=st.text(max_size=16),
    ),
    "submit-reply": st.builds(
        SubmitReply,
        shard_id=names,
        accepted=st.booleans(),
        shed=st.integers(0, 10),
        duplicate=st.booleans(),
    ),
    "dispatch": st.builds(DispatchRequest, deadline=st.none() | st.floats(0, 10, allow_nan=False)),
    "dispatch-shard": st.builds(
        DispatchShardReply, shard_id=names, report=wire_batch_reports()
    ),
    "dispatch-done": st.builds(
        DispatchDoneReply,
        dispatch_seconds=st.floats(0, 10, allow_nan=False),
        admission=wire_admission_stats(),
        expired=st.lists(names, max_size=3).map(tuple),
    ),
    "stats-reply": st.builds(
        StatsReply,
        admission=wire_admission_stats(),
        queue_depths=st.dictionaries(names, st.integers(0, 100), max_size=3),
        shard_count=st.integers(0, 16),
    ),
    "heartbeat": st.just(HeartbeatRequest()),
    "heartbeat-reply": st.builds(
        HeartbeatReply,
        shard_id=names,
        healthy=st.booleans(),
        batches_served=st.integers(0, 1000),
        queries_served=st.integers(0, 10_000),
    ),
    "fault-inject": st.builds(
        FaultInjectRequest,
        kind=st.sampled_from(["crash", "slow", "partition", "heal"]),
        seconds=st.floats(0, 10, allow_nan=False),
    ),
    "fault-inject-reply": st.builds(FaultInjectReply, applied=st.booleans()),
    "artifact-export": st.builds(ArtifactExportRequest, fingerprint=names),
    "artifact-export-reply": st.builds(
        ArtifactExportReply,
        fingerprint=names,
        segment=st.none() | names,
        found=st.booleans(),
    ),
    "artifact-adopt": st.builds(ArtifactAdoptRequest, fingerprint=names, segment=names),
    "artifact-adopt-reply": st.builds(ArtifactAdoptReply, adopted=st.booleans()),
    "journal-admit": st.builds(
        JournalAdmit,
        key=names,
        shard_id=names,
        accepted=st.booleans(),
        shed_keys=st.lists(names, max_size=3).map(tuple),
        query=st.none() | wire_shard_queries(),
    ),
    "journal-complete": st.builds(
        JournalComplete, key=names, fingerprint=names, shard_id=names
    ),
    "journal-checkpoint": wire_journal_checkpoints(),
}


def test_every_registered_type_has_a_strategy():
    # A message type added without a round-trip strategy fails here, so the
    # hypothesis property below really does cover *every* type.
    assert set(MESSAGE_STRATEGIES) == set(_MESSAGE_TYPES)


@settings(max_examples=40, deadline=None)
@given(message=st.one_of(*MESSAGE_STRATEGIES.values()))
def test_wire_round_trip_is_identity(message):
    assert message_from_wire(message.to_wire()) == message
    # Pinning the JSON codec explicitly must round-trip too (msgpack-capable
    # peers still answer JSON-only ones).
    assert message_from_wire(message.to_wire(CODEC_JSON)) == message


# -- versioning and tolerance ------------------------------------------------------


@pytest.mark.parametrize("cls", sorted(_MESSAGE_TYPES.values(), key=lambda c: c.type))
def test_version_mismatch_is_rejected(cls):
    payload = cls().to_payload()
    payload["v"] = WIRE_VERSION + 1
    with pytest.raises(SchemaVersionError):
        cls.from_payload(payload)
    with pytest.raises(SchemaVersionError):
        decode_message(payload)


@pytest.mark.parametrize("cls", sorted(_MESSAGE_TYPES.values(), key=lambda c: c.type))
def test_unknown_fields_are_tolerated(cls):
    # A same-version peer that grew extra fields (rolling upgrade) must still
    # interoperate: decoding ignores what it does not know.
    payload = cls().to_payload()
    payload["field_from_the_future"] = {"nested": [1, 2, 3]}
    assert decode_message(payload) == cls()


def test_unknown_message_type_is_rejected():
    with pytest.raises(WireDecodeError):
        decode_message({"type": "no-such-message", "v": WIRE_VERSION})


def test_typed_from_wire_checks_the_type():
    with pytest.raises(WireDecodeError):
        SubmitReply.from_wire(Ping().to_wire())


# -- codec gating ------------------------------------------------------------------


def test_json_codec_round_trips_payloads():
    codec, body = encode_payload({"a": 1, "b": [1.5, None, True]}, CODEC_JSON)
    assert codec == CODEC_JSON
    assert decode_payload(codec, body) == {"a": 1, "b": [1.5, None, True]}


def test_unknown_codec_id_is_rejected():
    with pytest.raises(WireDecodeError):
        decode_payload(99, b"{}")


def test_non_dict_payload_is_rejected():
    with pytest.raises(WireDecodeError):
        decode_payload(CODEC_JSON, b"[1,2,3]")


@pytest.mark.skipif(HAVE_MSGPACK, reason="msgpack installed: frames decode fine")
def test_msgpack_frames_fail_loudly_without_the_package():
    from repro.wire import CODEC_MSGPACK

    with pytest.raises(WireDecodeError):
        decode_payload(CODEC_MSGPACK, b"\x80")


def test_unencodable_values_raise_wire_encode_error():
    with pytest.raises(WireEncodeError):
        WireGraph.from_graph(_tuple_node_graph())
    with pytest.raises(WireEncodeError):
        WirePlan.from_plan(ExecutionPlan(backend="deterministic", backend_params={"f": object()}))


def _tuple_node_graph():
    import networkx as nx

    graph = nx.Graph()
    graph.add_edge((0, 1), (1, 2))  # tuple vertices are not wire-safe
    return graph


# -- parity with the live objects --------------------------------------------------


@pytest.fixture(scope="module")
def graph():
    return random_regular_expander(48, degree=6, seed=5)


def test_reconstructed_graph_fingerprints_identically(graph):
    rebuilt = WireGraph.from_wire(WireGraph.from_graph(graph).to_wire()).to_graph()
    assert graph_fingerprint(rebuilt) == graph_fingerprint(graph)
    assert set(rebuilt.nodes()) == set(graph.nodes())
    assert set(map(frozenset, rebuilt.edges())) == set(map(frozenset, graph.edges()))


def test_execution_plan_semantic_identity_survives_the_wire():
    plan = ExecutionPlan(
        backend="deterministic",
        backend_params={"epsilon": 0.25, "seed": 7},
        kernel="numpy",
        parallelism="threads",
        max_workers=4,
        shard_hint="shard-2",
        policy="cost",
        reason="unit test",
    )
    rebuilt = WirePlan.from_wire(WirePlan.from_plan(plan).to_wire()).to_plan()
    assert rebuilt == plan
    assert rebuilt.semantic_id == plan.semantic_id
    assert rebuilt.plan_id == plan.plan_id


def test_batch_report_signature_survives_the_wire(graph):
    with RoutingService(epsilon=0.5, metrics=MetricsRegistry()) as service:
        workload = permutation_workload(graph, shift=1)
        for request in workload.requests[:6]:
            service.submit(graph, [request], workload=workload.name)
        report = service.route_batch()
    rebuilt = WireBatchReport.from_wire(WireBatchReport.from_report(report).to_wire()).to_report()
    assert rebuilt.signature() == report.signature()
    assert rebuilt.query_count == report.query_count
    assert rebuilt.all_delivered == report.all_delivered


def test_shard_query_round_trips_through_converters(graph):
    from repro.cluster.worker import ShardQuery
    from repro.core.tokens import RoutingRequest

    plan = ExecutionPlan(backend="deterministic", shard_hint="shard-0")
    query = ShardQuery(
        fingerprint="fp-1",
        graph=graph,
        requests=(RoutingRequest(source=0, destination=1),),
        load=2,
        backend="deterministic",
        backend_params={"epsilon": 0.5},
        workload="permutation",
        plan=plan,
    )
    wire = WireShardQuery.from_wire(WireShardQuery.from_shard_query(query).to_wire())
    rebuilt = wire.to_shard_query()
    assert rebuilt.fingerprint == query.fingerprint
    assert rebuilt.requests == query.requests
    assert rebuilt.load == query.load
    assert rebuilt.backend == query.backend
    assert dict(rebuilt.backend_params) == dict(query.backend_params)
    assert rebuilt.workload == query.workload
    assert rebuilt.plan == query.plan
    assert graph_fingerprint(rebuilt.graph) == graph_fingerprint(query.graph)


def test_route_result_extra_keeps_only_wire_safe_entries():
    from repro.backends.base import RouteResult

    result = RouteResult(
        backend="deterministic",
        delivered=3,
        total_tokens=3,
        query_rounds=2,
        preprocess_rounds=1,
        extra={"paths": 4, "opaque": object()},
        raw=object(),
    )
    wire = WireRouteResult.from_result(result)
    assert wire.extra == {"paths": 4}  # the unserializable entry is dropped
    rebuilt = wire.to_result()
    assert rebuilt.delivered == 3 and rebuilt.raw is None


def test_base_from_wire_rejects_empty_and_garbage():
    with pytest.raises(WireDecodeError):
        WireMessage.from_wire(b"")
    with pytest.raises(WireDecodeError):
        WireMessage.from_wire(bytes([CODEC_JSON]) + b"not json")
