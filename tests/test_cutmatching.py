"""Tests for the cut-matching game: potentials, cut player, shuffler (Section 5.1, Appendix B)."""

import numpy as np
import pytest

from repro.cutmatching.cut_player import (
    ExhaustiveCutPlayer,
    SpectralCutPlayer,
    lemma_b4_split,
)
from repro.cutmatching.game import CutMatchingGame, build_shuffler
from repro.cutmatching.potential import WalkState, mixing_threshold, walk_matrix
from repro.graphs.generators import random_regular_expander
from repro.hierarchy.builder import HierarchyParameters, build_hierarchy


# -- walk matrices and potential (Definitions 5.2, 5.3) ---------------------------


def test_walk_matrix_rows_sum_to_one():
    matrix = walk_matrix(4, {(0, 1): 1.0, (2, 3): 0.5})
    assert np.allclose(matrix.sum(axis=1), 1.0)
    assert matrix[0, 1] == pytest.approx(0.5)
    assert matrix[2, 2] == pytest.approx(0.5 + 0.25)


def test_walk_matrix_rejects_overloaded_fractional_degree():
    with pytest.raises(ValueError):
        walk_matrix(3, {(0, 1): 0.8, (0, 2): 0.5})


def test_potential_starts_at_t_minus_one_and_decreases():
    state = WalkState(4)
    assert state.potential() == pytest.approx(3.0)
    before = state.potential()
    after = state.apply({(0, 1): 1.0, (2, 3): 1.0})
    assert after < before


def test_potential_reaches_mixing_threshold_with_enough_matchings():
    state = WalkState(4)
    # Alternating perfect matchings of the 4-cycle mix quickly.
    for _ in range(40):
        state.apply({(0, 1): 1.0, (2, 3): 1.0})
        state.apply({(1, 2): 1.0, (0, 3): 1.0})
    assert state.is_mixed(4)
    assert mixing_threshold(4) == pytest.approx(1 / (9 * 64))


# -- Lemma B.4 split -----------------------------------------------------------------


def test_lemma_b4_split_sizes_and_variance():
    values = [float(i) for i in range(16)]
    a_l, a_r, _ = lemma_b4_split(values)
    assert len(a_l) <= len(values) // 8 + 1
    assert len(a_r) >= len(values) // 2 - 1
    assert not set(a_l) & set(a_r)
    mean = sum(values) / len(values)
    total_variance = sum((v - mean) ** 2 for v in values)
    captured = sum((values[i] - mean) ** 2 for i in a_l)
    assert captured >= total_variance / 80 - 1e-9


# -- cut players ------------------------------------------------------------------------


def test_spectral_cut_player_returns_disjoint_sides_with_lighter_small_side():
    state = WalkState(8)
    state.apply({(0, 1): 1.0})
    player = SpectralCutPlayer()
    result = player.choose(state.matrix, part_sizes=[4] * 8)
    small, large = result.as_sets()
    assert small and large and not (small & large)
    assert 4 * len(small) <= 4 * len(large)


def test_spectral_cut_player_is_deterministic():
    state = WalkState(6)
    state.apply({(0, 1): 1.0, (2, 3): 0.5})
    player = SpectralCutPlayer()
    first = player.choose(state.matrix, [3] * 6)
    second = player.choose(state.matrix, [3] * 6)
    assert first == second


def test_exhaustive_cut_player_agrees_on_separation_quality():
    state = WalkState(5)
    state.apply({(0, 1): 1.0})
    spectral = SpectralCutPlayer(bisection=False).choose(state.matrix, [2] * 5)
    exhaustive = ExhaustiveCutPlayer().choose(state.matrix, [2] * 5)
    # The exhaustive player maximises the separation; the spectral player must
    # reach at least a constant fraction of it.
    assert spectral.separation >= exhaustive.separation / 10 - 1e-12


# -- the full game / shufflers (Lemma 5.5, Definition 5.4) --------------------------------


@pytest.fixture(scope="module")
def root_shuffler_setup():
    graph = random_regular_expander(96, degree=8, seed=7)
    decomposition = build_hierarchy(graph, HierarchyParameters(epsilon=0.5))
    parts = [sorted(part.vertices) for part in decomposition.root.parts]
    return decomposition.root.virtual_graph, parts


def test_cut_matching_game_builds_mixing_shuffler(root_shuffler_setup):
    base, parts = root_shuffler_setup
    outcome = CutMatchingGame(base, parts, psi=0.1).play()
    assert outcome.succeeded
    shuffler = outcome.shuffler
    assert shuffler.verify_mixing(len(parts))
    assert len(shuffler) >= 1


def test_shuffler_iteration_count_is_logarithmic(root_shuffler_setup):
    base, parts = root_shuffler_setup
    outcome = CutMatchingGame(base, parts, psi=0.1).play()
    n = base.number_of_nodes()
    # Lemma B.5 bound with the practical bisection player: well under 16 log2 n.
    assert outcome.iterations <= 16 * np.log2(n) + 16


def test_shuffler_potential_history_is_decreasing(root_shuffler_setup):
    base, parts = root_shuffler_setup
    outcome = CutMatchingGame(base, parts, psi=0.1).play()
    history = outcome.potential_history
    assert all(later <= earlier + 1e-9 for earlier, later in zip(history, history[1:]))


def test_shuffler_matchings_have_valid_embeddings(root_shuffler_setup):
    base, parts = root_shuffler_setup
    shuffler = build_shuffler(base, parts, psi=0.1)
    for matching in shuffler.matchings:
        for a, b in matching.matching_edges:
            path = matching.embedding.path_for(a, b)
            for u, v in zip(path.vertices, path.vertices[1:]):
                assert base.has_edge(u, v)
    assert shuffler.quality >= 1


def test_single_part_shuffler_is_trivially_mixed():
    graph = random_regular_expander(32, degree=6, seed=1)
    shuffler = build_shuffler(graph, [sorted(graph.nodes())])
    assert len(shuffler) == 0
    assert shuffler.part_count == 1
