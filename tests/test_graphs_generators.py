"""Tests for the graph generators used by the experiments."""

import networkx as nx
import pytest

from repro.graphs.conductance import spectral_gap
from repro.graphs.generators import (
    barbell_of_expanders,
    circulant_expander,
    erdos_renyi_graph,
    hypercube_graph,
    margulis_expander,
    planted_clique_graph,
    random_regular_expander,
    skewed_degree_expander,
    two_expander_graph,
    weighted_expander,
)


def test_circulant_expander_is_connected_constant_degree():
    graph = circulant_expander(100)
    assert nx.is_connected(graph)
    degrees = {degree for _, degree in graph.degree()}
    assert max(degrees) <= 8
    assert spectral_gap(graph) > 0.01


def test_circulant_expander_rejects_tiny_n():
    with pytest.raises(ValueError):
        circulant_expander(2)


def test_hypercube_graph_size_and_degree():
    graph = hypercube_graph(5)
    assert graph.number_of_nodes() == 32
    assert all(degree == 5 for _, degree in graph.degree())
    assert nx.is_connected(graph)


def test_margulis_expander_has_spectral_gap():
    graph = margulis_expander(8)
    assert graph.number_of_nodes() == 64
    assert nx.is_connected(graph)
    assert spectral_gap(graph) > 0.05


def test_random_regular_expander_is_regular_and_reproducible():
    a = random_regular_expander(64, degree=6, seed=5)
    b = random_regular_expander(64, degree=6, seed=5)
    assert set(a.edges()) == set(b.edges())
    assert all(degree == 6 for _, degree in a.degree())
    assert nx.is_connected(a)


def test_random_regular_expander_rejects_bad_parameters():
    with pytest.raises(ValueError):
        random_regular_expander(5, degree=8)
    with pytest.raises(ValueError):
        random_regular_expander(9, degree=3)  # odd product


def test_weighted_expander_weights_are_deterministic():
    a = weighted_expander(32, degree=6, seed=1)
    b = weighted_expander(32, degree=6, seed=1)
    for u, v in a.edges():
        assert a[u][v]["weight"] == b[u][v]["weight"]
        assert a[u][v]["weight"] >= 1


def test_erdos_renyi_graph_is_connected_component():
    graph = erdos_renyi_graph(80, 0.05, seed=2)
    assert nx.is_connected(graph)


def test_planted_clique_graph_contains_the_clique():
    graph = planted_clique_graph(50, clique_size=6, p=0.05, seed=3)
    for i in range(6):
        for j in range(i + 1, 6):
            assert graph.has_edge(i, j)
    assert nx.is_connected(graph)


def test_two_expander_graph_has_a_sparse_middle_cut():
    graph = two_expander_graph(64, bridge_edges=2, degree=6, seed=1)
    left = set(range(32))
    crossing = sum(1 for u, v in graph.edges() if (u in left) != (v in left))
    assert crossing == 2
    assert nx.is_connected(graph)


def test_barbell_of_expanders_structure():
    graph = barbell_of_expanders(parts=3, part_size=16, degree=4, seed=1)
    assert graph.number_of_nodes() == 48
    assert nx.is_connected(graph)


def test_skewed_degree_expander_has_hubs():
    graph = skewed_degree_expander(64, hub_count=2, degree=6, seed=1)
    degrees = sorted((degree for _, degree in graph.degree()), reverse=True)
    assert degrees[0] > 2 * degrees[-1]
    assert nx.is_connected(graph)
