"""Tests for the client resilience layer: retries, breakers, hedges, resubmit.

The deterministic building blocks (:class:`RetryPolicy` with a caller-seeded
RNG, :class:`CircuitBreaker` with an injectable clock) are tested exactly;
the client-level behaviours — ride through a gateway restart on the same
address, fail fast when the breaker opens, hedge a stalled read, never
double-enqueue a resubmitted submit — run against real sockets.
"""

import random
import socket
import threading

import pytest

from repro.cluster import ClusterCoordinator
from repro.graphs.generators import random_regular_expander
from repro.metrics import MetricsRegistry
from repro.net import (
    CircuitBreaker,
    CircuitOpenError,
    ClusterClient,
    ClusterGateway,
    RetryPolicy,
    recv_frame,
    send_frame,
)
from repro.net.resilience import BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN
from repro.planner import ExecutionPlan
from repro.wire import Ping, Pong
from repro.workloads import permutation_workload

PLAN = ExecutionPlan(backend="deterministic", max_workers=2)


@pytest.fixture(scope="module")
def graph():
    return random_regular_expander(48, degree=4, seed=1)


def _coordinator():
    return ClusterCoordinator(
        shard_count=2, cache_capacity=8, default_plan=PLAN, metrics=MetricsRegistry()
    )


# -- retry policy ------------------------------------------------------------------


def test_retry_policy_validates_its_knobs():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy(max_delay=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)


def test_retry_policy_backoff_grows_and_caps():
    policy = RetryPolicy(max_attempts=6, base_delay=0.1, max_delay=1.0, multiplier=2.0)
    ceilings = [policy.ceiling(retry) for retry in range(6)]
    assert ceilings == [0.1, 0.2, 0.4, 0.8, 1.0, 1.0]  # capped at max_delay


def test_retry_policy_jitter_is_seeded_and_bounded():
    policy = RetryPolicy(base_delay=0.1, max_delay=1.0, multiplier=2.0)
    first = [policy.delay(retry, random.Random(7)) for retry in range(4)]
    second = [policy.delay(retry, random.Random(7)) for retry in range(4)]
    assert first == second  # same seed, same schedule
    for retry, delay in enumerate(first):
        assert 0.0 <= delay <= policy.ceiling(retry)  # full jitter: uniform(0, cap)


# -- circuit breaker ---------------------------------------------------------------


def test_breaker_state_machine_with_fake_clock():
    clock = [0.0]
    states = []
    breaker = CircuitBreaker(
        failure_threshold=2,
        reset_timeout=10.0,
        clock=lambda: clock[0],
        on_state=states.append,
    )
    assert states == [BREAKER_CLOSED]  # gauges start at closed
    assert breaker.allow() and breaker.state == "closed"
    breaker.record_failure()
    assert breaker.allow()  # below the threshold: still closed
    breaker.record_failure()
    assert breaker.state == "open" and breaker.failures == 2
    assert not breaker.allow()  # open: fail fast
    clock[0] = 9.9
    assert not breaker.allow()  # reset_timeout not yet elapsed
    clock[0] = 10.0
    assert breaker.allow()  # exactly one half-open probe
    assert breaker.state == "half-open"
    assert not breaker.allow()  # the probe is out; everyone else waits
    breaker.record_failure()  # probe failed: re-open, clock restarts
    assert breaker.state == "open"
    assert not breaker.allow()
    clock[0] = 20.0
    assert breaker.allow()
    breaker.record_success()  # probe succeeded: closed, failures forgotten
    assert breaker.state == "closed" and breaker.failures == 0
    assert states == [
        BREAKER_CLOSED,
        BREAKER_OPEN,
        BREAKER_HALF_OPEN,
        BREAKER_OPEN,
        BREAKER_HALF_OPEN,
        BREAKER_CLOSED,
    ]


def test_breaker_validates_its_knobs():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(reset_timeout=-1.0)


# -- client rides through a gateway restart ----------------------------------------


def test_client_retries_through_gateway_restart(tmp_path, graph):
    socket_path = str(tmp_path / "gateway.sock")
    registry = MetricsRegistry()
    with _coordinator() as coordinator:
        first = ClusterGateway(coordinator, socket_path=socket_path)
        client = ClusterClient(first.address, metrics=registry, retry_seed=1)
        client._sleep = lambda _: None  # no real backoff sleeps in tests
        try:
            assert client.ping()
            reply = client.submit(graph, permutation_workload(graph, shift=1))
            assert reply.accepted
            first.close()  # the gateway dies; the coordinator survives
            second = ClusterGateway(coordinator, socket_path=socket_path)
            try:
                # The broken connection surfaces as a ConnectionError, the
                # retry reconnects to the restarted gateway, and queued work
                # is still there to dispatch.
                report = client.dispatch()
                assert report.query_count == 1
                assert report.all_delivered
            finally:
                second.close()
            retries = registry.as_dict()["repro_client_retries_total"]
            assert sum(retries.values()) >= 1
        finally:
            client.close()


def test_resubmitted_key_dedups_instead_of_double_enqueueing(tmp_path, graph):
    with _coordinator() as coordinator:
        with ClusterGateway(coordinator, socket_path=str(tmp_path / "g.sock")) as gate:
            with ClusterClient(gate.address, metrics=MetricsRegistry()) as client:
                workload = permutation_workload(graph, shift=1)
                first = client.submit(graph, workload, idempotency_key="retry-1")
                assert first.accepted and not first.duplicate
                # The crash-retry path resends the same key; the server
                # answers duplicate and enqueues nothing.
                again = client.submit(graph, workload, idempotency_key="retry-1")
                assert again.duplicate and not again.accepted
                assert again.shard_id == first.shard_id
                assert client.dispatch().query_count == 1
                # Unkeyed submissions auto-key client-side.
                auto = client.submit(graph, workload)
                assert auto.accepted and not auto.duplicate


# -- circuit breaker in the client -------------------------------------------------


def test_client_fails_fast_once_the_breaker_opens(tmp_path, graph):
    registry = MetricsRegistry()
    with _coordinator() as coordinator:
        gate = ClusterGateway(coordinator, socket_path=str(tmp_path / "g.sock"))
        client = ClusterClient(
            gate.address,
            metrics=registry,
            retry=RetryPolicy(max_attempts=1),  # surface each failure directly
            breaker_failures=2,
            breaker_reset=3600.0,  # no probe within this test
        )
        client._sleep = lambda _: None
        try:
            assert client.ping()
            gate.close()  # nothing restarts it this time
            for _ in range(2):
                with pytest.raises((ConnectionError, OSError)):
                    client.ping()
            assert client.breaker_state == "open"
            # The next call never touches the socket: the breaker refuses.
            with pytest.raises(CircuitOpenError):
                client.ping()
            gauge = registry.as_dict()["repro_client_breaker_state"]
            assert sum(gauge.values()) == 1.0  # one target, state == open
        finally:
            client.close()


# -- hedged reads ------------------------------------------------------------------


class _StallThenServe:
    """A frame server whose first connection stalls forever; later ones answer.

    The hedge path needs exactly this shape: the primary connection accepts
    the request and goes silent, and only a second connection gets a reply.
    """

    def __init__(self, path):
        self.listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.listener.bind(path)
        self.listener.listen(4)
        self.address = ("unix", path)
        self.connections = 0
        self._stalled = []
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return
            self.connections += 1
            if self.connections == 1:
                self._stalled.append(conn)  # read nothing, answer nothing
                continue
            try:
                if isinstance(recv_frame(conn), Ping):
                    send_frame(conn, Pong())
            except OSError:
                pass
            finally:
                conn.close()

    def close(self):
        for conn in self._stalled:
            conn.close()
        self.listener.close()


def test_hedged_ping_races_a_second_connection(tmp_path):
    server = _StallThenServe(str(tmp_path / "stall.sock"))
    registry = MetricsRegistry()
    client = ClusterClient(
        server.address,
        metrics=registry,
        retry=RetryPolicy(max_attempts=1),
        hedge_delay=0.05,
    )
    try:
        assert client.ping()  # the hedge's reply wins
        assert server.connections == 2
        hedges = registry.as_dict()["repro_client_hedges_total"]
        assert hedges.get('op="ping"', hedges.get("op=ping", 0)) >= 1
    finally:
        client.close()
        server.close()


def test_hedging_disabled_uses_one_connection(tmp_path, graph):
    with _coordinator() as coordinator:
        with ClusterGateway(coordinator, socket_path=str(tmp_path / "g.sock")) as gate:
            registry = MetricsRegistry()
            with ClusterClient(gate.address, metrics=registry) as client:
                assert client.ping()
                assert client.admission_totals().offered == 0
                assert "repro_client_hedges_total" not in {
                    name: series
                    for name, series in registry.as_dict().items()
                    if any(value for value in series.values())
                }
