"""Tests for the durability tier: journal, crash recovery, exactly-once.

The correctness frame is the ISSUE's exactly-once guarantee: a coordinator
SIGKILLed mid-stream and recovered from its write-ahead journal must lose no
admitted batch (``lost_batches == 0``), serve no batch twice
(``duplicate_results == 0``), and produce the same merged
:meth:`ClusterReport.signature` as a crash-free run — on the local and the
tcp transport alike.  Around it: WAL framing and torn-tail replay, checkpoint
rotation/pruning, the truncate-at-every-boundary invariants of
:func:`read_journal_state`, submit dedup, orphaned-shm reaping, and the
shard-spawn failure satellite.
"""

import multiprocessing
import os

import pytest

from repro.cluster import ClusterCoordinator, ClusterReport, OpenLoopLoadGenerator
from repro.durability import (
    CoordinatorJournal,
    CoordinatorSupervisor,
    WriteAheadJournal,
    read_journal_state,
    recover,
)
from repro.durability.journal import SEGMENT_PREFIX as WAL_PREFIX
from repro.elastic import FaultPlan
from repro.graphs.generators import random_regular_expander
from repro.metrics import MetricsRegistry
from repro.net import ShardSpawnError
from repro.net.shard_server import ShardServerConfig, start_shard_server
from repro.planner import ExecutionPlan
from repro.service.shm import SEGMENT_PREFIX as SHM_PREFIX
from repro.service.shm import leaked_segments
from repro.wire import JournalAdmit, JournalCheckpoint, JournalComplete, Ping, WireShardQuery
from repro.workloads import permutation_workload

PLAN = ExecutionPlan(backend="deterministic", max_workers=2)


@pytest.fixture(scope="module")
def graphs():
    return [random_regular_expander(48, degree=4, seed=seed) for seed in (1, 2)]


def _coordinator_kwargs(**overrides):
    defaults = dict(
        shard_count=3,
        cache_capacity=16,
        default_plan=PLAN,
        metrics=MetricsRegistry(),
    )
    defaults.update(overrides)
    return defaults


# -- WAL framing and replay --------------------------------------------------------


def test_wal_append_replay_round_trip(tmp_path):
    records = [
        JournalAdmit(key="k-1", shard_id="shard-0", accepted=True),
        JournalComplete(key="k-1", fingerprint="fp-1", shard_id="shard-0"),
        Ping(),  # any registered wire message journals
    ]
    with WriteAheadJournal(tmp_path, metrics=MetricsRegistry()) as wal:
        for record in records:
            assert wal.append(record) > 8  # header + payload
        assert list(wal.replay()) == records
        assert wal.size_bytes() == sum(p.stat().st_size for p in wal.segments())


def test_wal_rejects_tiny_segments_and_closed_appends(tmp_path):
    with pytest.raises(ValueError):
        WriteAheadJournal(tmp_path, segment_bytes=4)
    wal = WriteAheadJournal(tmp_path, metrics=MetricsRegistry())
    wal.close()
    wal.close()  # idempotent
    with pytest.raises(ValueError):
        wal.append(Ping())


def test_wal_replay_stops_at_torn_tail(tmp_path):
    wal = WriteAheadJournal(tmp_path, metrics=MetricsRegistry())
    wal.append(JournalAdmit(key="k-1", shard_id="shard-0", accepted=True))
    wal.append(JournalComplete(key="k-1", fingerprint="fp", shard_id="shard-0"))
    wal.abandon()
    [segment] = wal.segments()
    intact = segment.read_bytes()
    # Truncating anywhere strictly inside the second record must replay
    # exactly the first; corrupting a payload byte must stop before it.
    first_len = len(intact) // 2  # records are same-shaped; split point is inside rec 2
    for cut in (len(intact) - 1, len(intact) - 5, first_len + 1):
        segment.write_bytes(intact[:cut])
        replayed = list(WriteAheadJournal(tmp_path, metrics=MetricsRegistry()).replay())
        assert len(replayed) <= 1
        if replayed:
            assert replayed[0].key == "k-1"
    segment.write_bytes(intact[:-3] + b"???")
    replayed = list(WriteAheadJournal(tmp_path, metrics=MetricsRegistry()).replay())
    assert len(replayed) == 1  # checksum catches the flipped tail bytes


def test_wal_rotation_and_checkpoint_pruning(tmp_path):
    metrics = MetricsRegistry()
    wal = WriteAheadJournal(tmp_path, segment_bytes=256, metrics=metrics)
    for index in range(20):
        wal.append(JournalAdmit(key=f"k-{index}", shard_id="shard-0", accepted=True))
    assert len(wal.segments()) > 1  # tiny segment_bytes forces rotation
    wal.checkpoint(JournalCheckpoint(shard_ids=("shard-0",)))
    wal.append(JournalComplete(key="k-0", fingerprint="fp", shard_id="shard-0"))
    # Everything before the checkpoint is pruned; replay starts at it.
    replayed = list(wal.replay())
    assert isinstance(replayed[0], JournalCheckpoint)
    assert [type(r).__name__ for r in replayed] == ["JournalCheckpoint", "JournalComplete"]
    totals = metrics.as_dict()
    assert sum(totals["repro_journal_checkpoints_total"].values()) >= 1
    assert sum(totals["repro_journal_bytes_total"].values()) > 0
    wal.close()


# -- group commit ------------------------------------------------------------------


def _record_boundaries(data: bytes) -> list[int]:
    """Byte offsets where each journal record ends (header-walk, no decode)."""
    ends, offset = [], 0
    while offset + 8 <= len(data):
        length = int.from_bytes(data[offset : offset + 4], "big")
        offset += 8 + length
        ends.append(offset)
    return ends


def test_wal_group_commit_replays_like_individual_appends(tmp_path):
    """One buffered write, byte-identical framing, same replay — plus metrics."""
    records = [
        JournalAdmit(key=f"k-{index}", shard_id="shard-0", accepted=True)
        for index in range(4)
    ] + [JournalComplete(key="k-0", fingerprint="fp", shard_id="shard-0")]
    metrics = MetricsRegistry()
    with WriteAheadJournal(tmp_path / "grouped", metrics=metrics) as grouped:
        assert grouped.append_group(records) > 0
        assert grouped.append_group([]) == 0  # empty group: no write, no flush
        assert list(grouped.replay()) == records
        [grouped_segment] = grouped.segments()
        grouped_bytes = grouped_segment.read_bytes()
    with WriteAheadJournal(tmp_path / "single", metrics=MetricsRegistry()) as single:
        for record in records:
            single.append(record)
        [single_segment] = single.segments()
        # Replay cannot tell a group from individual appends: same bytes.
        assert single_segment.read_bytes() == grouped_bytes
    totals = metrics.as_dict()
    assert sum(totals["repro_journal_group_commits_total"].values()) == 1
    assert sum(totals["repro_journal_group_records_total"].values()) == len(records)


def test_wal_torn_group_loses_only_the_tail(tmp_path):
    wal = WriteAheadJournal(tmp_path, metrics=MetricsRegistry())
    wal.append(JournalAdmit(key="before", shard_id="s0", accepted=True))
    wal.append_group(
        [JournalAdmit(key=f"g-{index}", shard_id="s0", accepted=True) for index in range(3)]
    )
    wal.abandon()
    [segment] = wal.segments()
    intact = segment.read_bytes()
    ends = _record_boundaries(intact)
    assert len(ends) == 4
    # A crash mid-group truncates at an arbitrary byte: the group's intact
    # record prefix replays, the torn suffix is gone, nothing corrupts.
    segment.write_bytes(intact[: ends[2] + 3])
    replayed = list(WriteAheadJournal(tmp_path, metrics=MetricsRegistry()).replay())
    assert [record.key for record in replayed] == ["before", "g-0", "g-1"]


def test_submit_many_group_commits_one_flush(tmp_path, graphs):
    metrics = MetricsRegistry()
    journal = CoordinatorJournal(tmp_path, metrics=metrics)
    with ClusterCoordinator(**_coordinator_kwargs(), journal=journal) as coordinator:
        calls = [
            dict(
                graph=graphs[index % 2],
                requests=permutation_workload(graphs[index % 2], shift=1 + index),
            )
            for index in range(4)
        ]
        outcomes = coordinator.submit_many(calls)
        assert all(
            not isinstance(outcome, Exception) and outcome.accepted for outcome in outcomes
        )
        totals = metrics.as_dict()
        assert sum(totals["repro_journal_group_commits_total"].values()) == 1
        assert sum(totals["repro_journal_group_records_total"].values()) == len(calls)
        report = coordinator.dispatch()
        assert report.query_count == len(calls)
        assert report.all_delivered


@pytest.mark.chaos
def test_sigkill_mid_group_commit_loses_only_unacked_admissions(tmp_path, graphs):
    """Death inside a coalescing window: the torn group's admissions were
    never acknowledged, so losing them keeps exactly-once intact — acked work
    recovers and dedups, doomed keys resubmit fresh, nothing serves twice."""
    kwargs = _coordinator_kwargs()
    journal = CoordinatorJournal(tmp_path, metrics=MetricsRegistry())
    coordinator = ClusterCoordinator(**kwargs, journal=journal)
    for index in range(2):
        coordinator.submit(
            graphs[index],
            permutation_workload(graphs[index], shift=1),
            idempotency_key=f"acked-{index}",
        )
    # A group-commit window opens and buffers two admissions; the process is
    # SIGKILLed before the flush — simulated by entering the window and
    # abandoning the journal without ever exiting (kill -9 runs no exits).
    window = journal.group()
    window.__enter__()
    for index in range(2):
        coordinator.submit(
            graphs[index],
            permutation_workload(graphs[index], shift=2),
            idempotency_key=f"doomed-{index}",
        )
    journal.abandon()
    for worker in coordinator.workers.values():
        worker.close()
    # The buffered group can no longer reach disk (generator cleanup only;
    # a real SIGKILL never runs this at all).
    with pytest.raises(ValueError, match="closed"):
        window.__exit__(None, None, None)

    recovered, report = recover(tmp_path, kwargs)
    try:
        assert report.batches_recovered == 2  # the flushed admissions only
        assert set(recovered.pending_keys()) == {"acked-0", "acked-1"}
        # The doomed keys were never acked, so the client's crash-retry
        # resubmission is admitted fresh (not a duplicate)…
        retry = recovered.submit(
            graphs[0],
            permutation_workload(graphs[0], shift=2),
            idempotency_key="doomed-0",
        )
        assert retry.accepted and not retry.duplicate
        # …while flushed work dedups instead of double-enqueueing.
        assert recovered.submit(
            graphs[0],
            permutation_workload(graphs[0], shift=1),
            idempotency_key="acked-0",
        ).duplicate
        final = recovered.dispatch()
        assert final.query_count == 3
        assert final.all_delivered
        assert recovered.duplicate_results == 0
    finally:
        recovered.close()


# -- truncation invariants ---------------------------------------------------------


def _journal_some_traffic(tmp_path, graphs):
    """Drive a real journaling coordinator and return its journal directory."""
    journal = CoordinatorJournal(
        tmp_path, segment_bytes=1 << 16, checkpoint_interval=25, metrics=MetricsRegistry()
    )
    coordinator = ClusterCoordinator(**_coordinator_kwargs(), journal=journal)
    for round_index in range(3):
        for graph in graphs:
            for shift in (1, 2, 3):
                coordinator.submit(graph, permutation_workload(graph, shift=shift))
        coordinator.dispatch()
    # Abandon, not close: a clean shutdown folds everything into one final
    # checkpoint and there would be no record boundaries left to truncate at.
    journal.abandon()
    for worker in coordinator.workers.values():
        worker.close()
    return tmp_path


def test_recovery_invariants_hold_at_every_record_boundary(tmp_path, graphs):
    """Crash-at-every-boundary: fold each record-prefix of the journal and
    assert the exactly-once invariants hold at every one of them."""
    directory = _journal_some_traffic(tmp_path, graphs)
    wal = WriteAheadJournal(directory, metrics=MetricsRegistry())
    [*paths] = wal.segments()
    frames = []
    for path in paths:
        data = path.read_bytes()
        offset = 0
        while offset + 8 <= len(data):
            length = int.from_bytes(data[offset : offset + 4], "big")
            frames.append((path, offset + 8 + length))
            offset += 8 + length
    wal.close()
    assert len(frames) > 10
    originals = {path: path.read_bytes() for path in paths}
    try:
        for cut_path, cut in frames:
            # Restore everything, then truncate one segment at one boundary
            # (and drop the segments after it, as a crash there would).
            dropping = False
            for path in paths:
                if dropping:
                    path.unlink(missing_ok=True)
                elif path == cut_path:
                    path.write_bytes(originals[path][:cut])
                    dropping = True
                else:
                    path.write_bytes(originals[path])
            state = read_journal_state(directory)
            # No batch is both pending and completed, ever.
            assert not set(state.pending) & state.completed
            # Pending queries carry their own keys, replayable verbatim.
            assert all(
                query.idempotency_key == key for key, query in state.pending.items()
            )
            assert all(isinstance(q, WireShardQuery) for q in state.warm.values())
            assert state.records_total >= 1
    finally:
        for path in paths:
            path.write_bytes(originals[path])


def test_read_journal_state_never_resurrects_shed_keys(tmp_path):
    wal = WriteAheadJournal(tmp_path, metrics=MetricsRegistry())
    query_a = WireShardQuery(fingerprint="fp-a", idempotency_key="k-a")
    query_b = WireShardQuery(fingerprint="fp-b", idempotency_key="k-b")
    wal.append(JournalAdmit(key="k-a", shard_id="s0", accepted=True, query=query_a))
    # k-b's admission sheds k-a from the queue: k-a must never come back.
    wal.append(
        JournalAdmit(
            key="k-b", shard_id="s0", accepted=True, shed_keys=("k-a",), query=query_b
        )
    )
    wal.append(JournalComplete(key="k-b", fingerprint="fp-b", shard_id="s0"))
    wal.close()
    state = read_journal_state(tmp_path)
    assert "k-a" not in state.pending
    assert state.completed == {"k-b"}
    assert state.admission["s0"]["shed"] == 1
    assert list(state.warm) == ["fp-b"]  # completion promoted the exemplar


# -- exactly-once submit dedup -----------------------------------------------------


def test_submit_dedup_is_exactly_once(graphs):
    with ClusterCoordinator(**_coordinator_kwargs()) as coordinator:
        workload = permutation_workload(graphs[0], shift=1)
        first = coordinator.submit(graphs[0], workload, idempotency_key="once")
        assert first.accepted and not first.duplicate
        # Pending: a resubmission dedups onto the original owner.
        again = coordinator.submit(graphs[0], workload, idempotency_key="once")
        assert again.duplicate and not again.accepted
        assert again.shard_id == first.shard_id
        report = coordinator.dispatch()
        assert report.query_count == 1
        # Completed: still dedups, and nothing re-executes.
        done = coordinator.submit(graphs[0], workload, idempotency_key="once")
        assert done.duplicate
        assert coordinator.dispatch().query_count == 0
        assert coordinator.duplicate_results == 0
        assert coordinator.completed_key_count() == 1
        dedups = coordinator.metrics.as_dict()["repro_journal_dedup_hits_total"]
        assert sum(dedups.values()) == 2


def test_journaled_coordinator_auto_keys_unkeyed_submissions(tmp_path, graphs):
    journal = CoordinatorJournal(tmp_path, metrics=MetricsRegistry())
    with ClusterCoordinator(**_coordinator_kwargs(), journal=journal) as coordinator:
        decision = coordinator.submit(graphs[0], permutation_workload(graphs[0], shift=1))
        assert decision.accepted
        [key] = coordinator.pending_keys()
        assert key.startswith("auto-")
        coordinator.dispatch()
        assert coordinator.pending_keys() == {}
        assert coordinator.completed_key_count() == 1


# -- recovery ----------------------------------------------------------------------


def test_recover_readmits_pending_and_dedups_completed(tmp_path, graphs):
    kwargs = _coordinator_kwargs()
    journal = CoordinatorJournal(tmp_path, metrics=MetricsRegistry())
    coordinator = ClusterCoordinator(**kwargs, journal=journal)
    workloads = [permutation_workload(g, shift=s) for g in graphs for s in (1, 2)]
    for index, workload in enumerate(workloads[:2]):
        coordinator.submit(graphs[index % 2], workload, idempotency_key=f"done-{index}")
    coordinator.dispatch()
    for index, workload in enumerate(workloads[2:]):
        coordinator.submit(graphs[index % 2], workload, idempotency_key=f"pend-{index}")
    # SIGKILL semantics: abandon the journal, drop the coordinator unclosed.
    journal.abandon()
    for worker in coordinator.workers.values():
        worker.close()

    recovered, report = recover(tmp_path, kwargs)
    try:
        assert report.checkpoint_found
        assert report.batches_recovered == 2
        assert report.completed_keys == 2
        assert report.rewarm_failures == 0
        assert report.replay_records_per_second >= 0
        assert set(report.summary()) >= {"batches_recovered", "journal_bytes"}
        # The recovered incarnation dedups both finished and in-flight keys.
        assert recovered.submit(
            graphs[0], workloads[0], idempotency_key="done-0"
        ).duplicate
        assert recovered.submit(
            graphs[0], workloads[2], idempotency_key="pend-0"
        ).duplicate
        # The two recovered batches serve exactly once.
        final = recovered.dispatch()
        assert final.query_count == 2
        assert final.all_delivered
        assert recovered.duplicate_results == 0
    finally:
        recovered.close()


def test_recover_rewarms_caches_for_signature_parity(tmp_path, graphs):
    kwargs = _coordinator_kwargs()

    def drive(coordinator):
        for graph in graphs:
            for shift in (1, 2):
                coordinator.submit(graph, permutation_workload(graph, shift=shift))
        return coordinator.dispatch()

    # Crash-free twin: two dispatch cycles, the second entirely cache-warm.
    with ClusterCoordinator(**_coordinator_kwargs()) as twin:
        drive(twin)
        baseline = drive(twin)
    assert baseline.cache_hits == baseline.query_count

    journal = CoordinatorJournal(tmp_path, metrics=MetricsRegistry())
    coordinator = ClusterCoordinator(**kwargs, journal=journal)
    drive(coordinator)
    journal.abandon()
    for worker in coordinator.workers.values():
        worker.close()
    recovered, report = recover(tmp_path, kwargs)
    try:
        assert report.rewarmed == len(graphs)
        after = drive(recovered)
        # Re-warmed caches reproduce the crash-free hit stream byte for byte.
        assert after.cache_hits == after.query_count
        assert after.preprocess_rounds_incurred == 0
        assert after.signature() == baseline.signature()
    finally:
        recovered.close()


def test_recovery_without_a_checkpoint_starts_fresh(tmp_path):
    (tmp_path / f"{WAL_PREFIX}00000000.log").write_bytes(b"")
    coordinator, report = recover(tmp_path, _coordinator_kwargs(), attach=False)
    try:
        assert not report.checkpoint_found
        assert report.batches_recovered == 0
        assert coordinator.shard_count == 3  # falls back to configured shard_count
    finally:
        coordinator.close()


def test_supervisor_crash_recover_cycle_survives_a_second_crash(tmp_path, graphs):
    """The recovered incarnation is itself recoverable (seeded journal)."""
    supervisor = CoordinatorSupervisor(tmp_path, _coordinator_kwargs())
    with supervisor:
        coordinator = supervisor.start()
        with pytest.raises(RuntimeError):
            supervisor.start()  # one live incarnation at a time
        for index in range(4):
            coordinator.submit(
                graphs[index % 2],
                permutation_workload(graphs[index % 2], shift=1 + index % 3),
                idempotency_key=f"k-{index}",
            )
        coordinator = supervisor.crash_coordinator()
        assert supervisor.crashes == 1
        assert len(supervisor.recoveries) == 1
        assert supervisor.recoveries[0].batches_recovered == 4
        # Crash again before dispatching: the seeded journal still holds the
        # re-admitted batches, so nothing is lost across the double crash.
        coordinator = supervisor.crash_coordinator()
        assert supervisor.recoveries[1].batches_recovered == 4
        report = coordinator.dispatch()
        assert report.query_count == 4
        assert report.all_delivered
        assert coordinator.duplicate_results == 0


# -- chaos: coordinator crash under open-loop load ---------------------------------


def _chaos_recipe(transport: str):
    graphs = [random_regular_expander(48, degree=4, seed=s) for s in (1, 2)]
    kwargs = _coordinator_kwargs(
        shard_count=2 if transport == "tcp" else 3, transport=transport
    )

    def generator():
        return OpenLoopLoadGenerator(
            graphs, rate=120.0, duration=0.4, dispatch_interval=0.1, seed=3
        )

    return kwargs, generator


def _merged_signature(report):
    return ClusterReport.merged(report.cluster_reports).signature()


def _crash_parity_run(tmp_path, transport):
    kwargs, generator = _chaos_recipe(transport)
    baseline_coordinator = ClusterCoordinator(**{**kwargs, "metrics": MetricsRegistry()})
    with baseline_coordinator:
        baseline = generator().run(baseline_coordinator)
    supervisor = CoordinatorSupervisor(tmp_path, kwargs)
    with supervisor:
        coordinator = supervisor.start()
        chaos = generator().run(
            coordinator,
            fault_plan=FaultPlan.coordinator_crash(at=0.23),
            supervisor=supervisor,
        )
    assert supervisor.crashes == 1
    assert len(supervisor.recoveries) == 1
    assert supervisor.recoveries[0].batches_recovered > 0
    assert chaos.lost_batches == 0
    assert chaos.duplicate_results == 0
    assert chaos.completed == baseline.completed
    assert _merged_signature(chaos) == _merged_signature(baseline)
    applied = [row for row in chaos.fault_events if row["applied"]]
    assert [row["kind"] for row in applied] == ["coordinator-crash"]


def test_local_coordinator_crash_recovers_with_signature_parity(tmp_path):
    _crash_parity_run(tmp_path, "local")


@pytest.mark.chaos
def test_tcp_coordinator_crash_recovers_with_signature_parity(tmp_path):
    """SIGKILLs real shard server processes; the journal still recovers a
    byte-identical run, and the orphaned shm segments get swept."""
    _crash_parity_run(tmp_path, "tcp")
    assert leaked_segments() == []  # the sweep left /dev/shm clean


# -- orphaned shm segments ---------------------------------------------------------


@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="no /dev/shm on this platform")
def test_leaked_segments_reaps_only_dead_owners():
    probe = multiprocessing.get_context("spawn").Process(target=int)
    probe.start()
    dead_pid = probe.pid
    probe.join()
    orphan = f"{SHM_PREFIX}-{dead_pid}-0-deadbeef"
    live = f"{SHM_PREFIX}-{os.getpid()}-0-cafebabe"
    for name in (orphan, live):
        with open(os.path.join("/dev/shm", name), "wb") as handle:
            handle.write(b"x")
    try:
        assert orphan in leaked_segments()
        reaped = leaked_segments(reap=True)
        assert orphan in reaped
        assert live not in reaped  # live owner: never touched
        assert not os.path.exists(os.path.join("/dev/shm", orphan))
        assert os.path.exists(os.path.join("/dev/shm", live))
    finally:
        for name in (orphan, live):
            try:
                os.unlink(os.path.join("/dev/shm", name))
            except FileNotFoundError:
                pass


# -- shard spawn failures ----------------------------------------------------------


def test_start_shard_server_raises_clear_spawn_error(tmp_path):
    config = ShardServerConfig(
        shard_id="doomed",
        socket_path=str(tmp_path / "no-such-dir" / "doomed.sock"),
        default_plan=PLAN,
    )
    with pytest.raises(ShardSpawnError, match="doomed"):
        start_shard_server(config, metrics=MetricsRegistry())
