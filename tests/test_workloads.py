"""Tests for the workload generator subsystem (shapes, validity, registry)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import pytest

from repro.graphs.generators import circulant_expander
from repro.workloads import (
    WORKLOAD_GENERATORS,
    Workload,
    adversarial_bipartite_workload,
    available_workloads,
    broadcast_workload,
    gather_workload,
    hotspot_workload,
    infer_load,
    make_workload,
    multi_token_workload,
    permutation_workload,
)

_GRAPH_CACHE = {}


def _graph(n):
    if n not in _GRAPH_CACHE:
        _GRAPH_CACHE[n] = circulant_expander(n)
    return _GRAPH_CACHE[n]


# -- catalog -----------------------------------------------------------------------


def test_catalog_lists_all_shapes():
    assert available_workloads() == sorted(WORKLOAD_GENERATORS)
    assert {
        "permutation",
        "multi-token",
        "hotspot",
        "broadcast",
        "gather",
        "adversarial-bipartite",
    } == set(WORKLOAD_GENERATORS)


def test_make_workload_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown workload"):
        make_workload("nope", _graph(16))


# -- shape semantics ---------------------------------------------------------------


def test_permutation_is_a_bijection():
    graph = _graph(32)
    workload = permutation_workload(graph, shift=4)
    assert len(workload) == 32
    assert workload.load == 1
    assert {r.source for r in workload.requests} == set(graph.nodes())
    assert {r.destination for r in workload.requests} == set(graph.nodes())


def test_seeded_permutation_is_reproducible_and_differs_across_seeds():
    graph = _graph(32)
    first = permutation_workload(graph, seed=11)
    again = permutation_workload(graph, seed=11)
    other = permutation_workload(graph, seed=12)
    assert first.requests == again.requests
    assert first.requests != other.requests


def test_multi_token_reaches_the_declared_load():
    graph = _graph(32)
    workload = multi_token_workload(graph, load=3)
    assert len(workload) == 96
    assert infer_load(workload.requests) == 3


def test_hotspot_concentrates_destinations():
    graph = _graph(64)
    workload = hotspot_workload(graph, load=4, hot_fraction=0.1, seed=3)
    destination_counts = {}
    for request in workload.requests:
        destination_counts[request.destination] = destination_counts.get(request.destination, 0) + 1
    assert max(destination_counts.values()) == 4  # hot vertices soak up the full load
    assert len(workload) == 64  # every vertex sends exactly one token
    assert workload.validate(graph) == []


def test_broadcast_and_gather_are_mirror_shapes():
    graph = _graph(32)
    broadcast = broadcast_workload(graph, root=5, fanout=6)
    gather = gather_workload(graph, root=5, fanout=6)
    assert all(r.source == 5 for r in broadcast.requests)
    assert all(r.destination == 5 for r in gather.requests)
    assert len(broadcast) == len(gather) == 6
    assert broadcast.load == gather.load == 6
    assert broadcast.validate(graph) == []
    assert gather.validate(graph) == []


def test_broadcast_rejects_foreign_roots():
    with pytest.raises(ValueError, match="not a vertex"):
        broadcast_workload(_graph(16), root=99)


def test_adversarial_bipartite_crosses_the_halves():
    graph = _graph(32)
    workload = adversarial_bipartite_workload(graph, seed=1)
    low = set(sorted(graph.nodes())[:16])
    for request in workload.requests:
        assert (request.source in low) != (request.destination in low)
    assert workload.load == 1
    assert len(workload) == 32


def test_validate_flags_bad_workloads():
    graph = _graph(16)
    good = permutation_workload(graph)
    alien = Workload(name="alien", requests=good.requests, load=1)
    assert alien.validate(_graph(8))  # vertices 8..15 lie outside the smaller graph
    underdeclared = Workload(name="tight", requests=multi_token_workload(graph, 2).requests, load=1)
    assert any("exceeds declared load" in p for p in underdeclared.validate(graph))


# -- property-based: every generator yields valid requests -------------------------


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    name=st.sampled_from(sorted(WORKLOAD_GENERATORS)),
    n=st.sampled_from([17, 24, 32, 33, 48]),
    load=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_every_generator_produces_valid_requests(name, n, load, seed):
    graph = _graph(n)
    if name in ("permutation", "adversarial-bipartite"):
        workload = make_workload(name, graph, seed=seed)
    elif name == "multi-token":
        workload = make_workload(name, graph, load=load)
    elif name == "hotspot":
        workload = make_workload(name, graph, load=load, seed=seed)
    else:  # broadcast / gather
        workload = make_workload(name, graph, fanout=load + 3)
    assert workload.validate(graph) == []
    vertices = set(graph.nodes())
    assert all(r.source in vertices and r.destination in vertices for r in workload.requests)
    # The load bound is respected: the observed load never exceeds the declared one.
    assert infer_load(workload.requests) <= workload.load
    # Generators are deterministic given their parameters.
    assert workload.requests == make_workload(name, graph, **dict(workload.params)).requests
