"""Tests for the serving layer: fingerprints, artifact cache, batched routing."""

import pickle

import pytest

from repro.core.router import ExpanderRouter, PreprocessArtifact
from repro.core.tokens import RoutingRequest
from repro.graphs.generators import circulant_expander, weighted_expander
from repro.service import (
    ArtifactCache,
    BatchReport,
    RoutingService,
    graph_fingerprint,
)


def _permutation(graph, shift=5):
    n = graph.number_of_nodes()
    return [RoutingRequest(source=v, destination=(v + shift) % n) for v in graph.nodes()]


@pytest.fixture(scope="module")
def small_graph():
    return circulant_expander(48)


@pytest.fixture(scope="module")
def small_artifact(small_graph):
    return ExpanderRouter(small_graph, epsilon=0.5).export_artifact(fingerprint="small")


# -- fingerprints -----------------------------------------------------------------


def test_fingerprint_is_stable_across_edge_order(small_graph):
    import networkx as nx

    shuffled = nx.Graph()
    shuffled.add_nodes_from(reversed(sorted(small_graph.nodes())))
    shuffled.add_edges_from(reversed(list(small_graph.edges())))
    assert graph_fingerprint(shuffled) == graph_fingerprint(small_graph)


def test_fingerprint_changes_with_topology_weights_and_parameters(small_graph):
    base = graph_fingerprint(small_graph, {"epsilon": 0.5})

    mutated = small_graph.copy()
    mutated.add_edge(0, small_graph.number_of_nodes() // 2 + 1)
    assert graph_fingerprint(mutated, {"epsilon": 0.5}) != base

    weighted = weighted_expander(48, degree=6, seed=2)
    reweighted = weighted.copy()
    u, v = next(iter(reweighted.edges()))
    reweighted[u][v]["weight"] = reweighted[u][v].get("weight", 1.0) + 1.0
    assert graph_fingerprint(reweighted) != graph_fingerprint(weighted)

    assert graph_fingerprint(small_graph, {"epsilon": 0.7}) != base
    assert graph_fingerprint(small_graph) != base


# -- artifact cache ---------------------------------------------------------------


def test_cache_miss_then_hit(small_artifact):
    cache = ArtifactCache(capacity=2)
    assert cache.get("small") is None
    cache.put("small", small_artifact)
    assert cache.get("small") is small_artifact
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1
    assert cache.stats.hit_rate == 0.5


def test_cache_lru_evicts_least_recently_used(small_artifact):
    cache = ArtifactCache(capacity=2)
    cache.put("a", small_artifact)
    cache.put("b", small_artifact)
    assert cache.get("a") is not None  # refresh "a"; "b" is now the LRU entry
    cache.put("c", small_artifact)
    assert cache.stats.evictions == 1
    assert "b" not in cache
    assert cache.get("a") is not None and cache.get("c") is not None


def test_cache_disk_tier_survives_a_new_cache(tmp_path, small_artifact):
    first = ArtifactCache(capacity=2, disk_dir=tmp_path / "store")
    first.put("small", small_artifact)
    assert (tmp_path / "store" / "small.pkl").exists()

    second = ArtifactCache(capacity=2, disk_dir=tmp_path / "store")
    restored = second.get("small")
    assert restored is not None
    assert second.stats.disk_hits == 1
    assert restored.preprocessing_rounds == small_artifact.preprocessing_rounds
    # Promoted into memory: the next lookup is a plain hit.
    assert second.get("small") is restored
    assert second.stats.hits == 1


def test_cache_rejects_corrupt_and_mismatched_disk_entries(tmp_path, small_artifact):
    cache = ArtifactCache(capacity=2, disk_dir=tmp_path)
    (tmp_path / "bad.pkl").write_bytes(b"not a pickle")
    assert cache.get("bad") is None
    assert not (tmp_path / "bad.pkl").exists()

    # A valid pickle stored under the wrong fingerprint must not be served.
    with open(tmp_path / "other.pkl", "wb") as handle:
        pickle.dump(small_artifact, handle)
    assert cache.get("other") is None
    assert cache.stats.disk_rejects == 2


# -- artifact export / restore ----------------------------------------------------


def test_artifact_pickle_round_trip_routes_identically(small_graph, small_artifact):
    clone = pickle.loads(pickle.dumps(small_artifact))
    assert isinstance(clone, PreprocessArtifact)
    assert clone.fingerprint == "small"
    assert clone.preprocessing_rounds == small_artifact.preprocessing_rounds

    original = ExpanderRouter.from_artifact(small_graph, small_artifact)
    restored = ExpanderRouter.from_artifact(small_graph, clone)
    requests = _permutation(small_graph)
    first = original.route(requests)
    second = restored.route(requests)
    assert second.all_delivered
    assert second.query_rounds == first.query_rounds
    assert second.preprocessing_rounds == first.preprocessing_rounds
    assert [t.current_vertex for t in second.tokens] == [t.current_vertex for t in first.tokens]


def test_from_artifact_rejects_wrong_graph_and_version(small_graph, small_artifact):
    other = circulant_expander(32)
    with pytest.raises(ValueError, match="vertex set"):
        ExpanderRouter.from_artifact(other, small_artifact)

    stale = pickle.loads(pickle.dumps(small_artifact))
    stale.format_version = 999
    with pytest.raises(ValueError, match="format version"):
        ExpanderRouter.from_artifact(small_graph, stale)


# -- routing service --------------------------------------------------------------


def test_batch_results_match_sequential_route(small_graph):
    service = RoutingService(epsilon=0.5, max_workers=4)
    workloads = [_permutation(small_graph, shift) for shift in (1, 5, 9, 13)]
    for requests in workloads:
        service.submit(small_graph, requests)
    report = service.route_batch()
    assert isinstance(report, BatchReport)
    assert report.query_count == 4
    assert report.all_delivered

    router = ExpanderRouter(small_graph, epsilon=0.5)
    router.preprocess()
    for result, requests in zip(sorted(report.results, key=lambda r: r.query_id), workloads):
        sequential = router.route(requests)
        assert result.outcome.query_rounds == sequential.query_rounds
        assert result.outcome.delivered == sequential.delivered
        assert [t.current_vertex for t in result.outcome.tokens] == [
            t.current_vertex for t in sequential.tokens
        ]


def test_batch_preprocesses_each_distinct_graph_once(small_graph):
    service = RoutingService(epsilon=0.5)
    other = circulant_expander(32)
    for _ in range(3):
        service.submit(small_graph, _permutation(small_graph))
    service.submit(other, _permutation(other))
    report = service.route_batch()
    assert report.distinct_graphs == 2
    assert report.cache_misses == 4  # every query of a cold batch waits on a build
    assert service.cache.stats.stores == 2  # but each graph is preprocessed once
    assert report.preprocess_rounds_incurred > 0

    warm = service.route_batch([])  # empty batch is a no-op
    assert warm.query_count == 0


def test_warm_batch_skips_preprocessing_entirely(small_graph):
    service = RoutingService(epsilon=0.5)
    service.route(small_graph, _permutation(small_graph))
    for shift in (2, 4, 6):
        service.submit(small_graph, _permutation(small_graph, shift))
    report = service.route_batch()
    assert report.cache_hits == 3
    assert report.cache_hit_rate == 1.0
    assert report.preprocess_rounds_incurred == 0
    assert report.preprocess_rounds_reused > 0
    assert report.all_delivered


def test_route_returns_its_own_outcome_not_a_pending_query(small_graph):
    service = RoutingService(epsilon=0.5)
    pending = _permutation(small_graph)
    service.submit(small_graph, pending)
    single = [RoutingRequest(source=0, destination=1)]
    outcome = service.route(small_graph, single)
    assert outcome.total_tokens == 1  # not the 48-token pending query
    assert service.pending_count == 1  # submit()ed work is still queued
    report = service.route_batch()
    assert report.query_count == 1
    assert report.results[0].outcome.total_tokens == len(pending)


def test_graph_change_invalidates_the_cache_entry(small_graph):
    service = RoutingService(epsilon=0.5)
    service.route(small_graph, _permutation(small_graph))

    mutated = small_graph.copy()
    mutated.add_edge(0, 17)
    assert service.fingerprint(mutated) != service.fingerprint(small_graph)
    service.submit(mutated, _permutation(mutated))
    report = service.route_batch()
    # The mutated graph is a different key: preprocessed fresh, not served stale.
    assert report.cache_hits == 0
    assert report.preprocess_rounds_incurred > 0
    assert report.all_delivered


def test_services_with_different_parameters_do_not_share_artifacts(small_graph, tmp_path):
    store = tmp_path / "artifacts"
    coarse = RoutingService(epsilon=0.7, cache=ArtifactCache(disk_dir=store))
    fine = RoutingService(epsilon=0.34, cache=ArtifactCache(disk_dir=store))
    coarse.route(small_graph, _permutation(small_graph))
    fine.route(small_graph, _permutation(small_graph))
    assert coarse.fingerprint(small_graph) != fine.fingerprint(small_graph)
    assert fine.cache.stats.disk_hits == 0  # the shared disk tier never cross-serves


def test_submit_memoizes_graph_canonicalization_per_object(small_graph, monkeypatch):
    import repro.service.service as service_module

    calls = {"count": 0}
    real_payload = service_module.graph_payload

    def counting_payload(graph):
        calls["count"] += 1
        return real_payload(graph)

    monkeypatch.setattr(service_module, "graph_payload", counting_payload)
    service = RoutingService(epsilon=0.5)
    for shift in (1, 2, 3, 4):
        service.submit(small_graph, _permutation(small_graph, shift))
    assert calls["count"] == 1  # canonicalized once, not per submit
    assert service.fingerprint_memo_size == 1

    # A distinct object — even an identical copy — is canonicalized afresh,
    # which is what keeps mutated copies from reusing a stale payload.
    copied = small_graph.copy()
    service.submit(copied, _permutation(copied))
    assert calls["count"] == 2
    assert service.fingerprint_memo_size == 2
    assert service.fingerprint(copied) == service.fingerprint(small_graph)


def test_submit_accepts_workload_objects(small_graph):
    from repro.workloads import multi_token_workload

    workload = multi_token_workload(small_graph, load=2)
    service = RoutingService(epsilon=0.5)
    service.submit(small_graph, workload)
    report = service.route_batch()
    result = report.results[0]
    assert result.workload == "multi-token"
    assert result.outcome.load == 2
    assert result.outcome.total_tokens == len(workload.requests)
    assert report.all_delivered


def test_batch_report_renders_through_reporting_helpers(small_graph):
    service = RoutingService(epsilon=0.5)
    service.submit(small_graph, _permutation(small_graph))
    report = service.route_batch()
    rendered = report.render()
    assert "cache_hit_rate" in rendered
    assert "query_rounds" in rendered
    summary = report.summary()
    assert summary["queries"] == 1
    assert summary["all_delivered"] is True


# -- disk-tier capacity -----------------------------------------------------------


def test_disk_tier_evicts_oldest_first(tmp_path, small_artifact):
    import time

    cache = ArtifactCache(capacity=8, disk_dir=tmp_path, disk_capacity=2)
    for key in ("fp-a", "fp-b", "fp-c"):
        cache.put(key, small_artifact)
        time.sleep(0.005)  # keep mtimes strictly ordered on coarse filesystems

    remaining = sorted(path.stem for path in tmp_path.glob("*.pkl"))
    assert remaining == ["fp-b", "fp-c"]
    assert cache.stats.evictions_disk == 1
    # The disk cap does not touch the memory tier.
    assert cache.stats.evictions == 0
    assert len(cache) == 3

    # A fresh cache over the same directory misses the evicted key and still
    # serves the survivors.
    revived = ArtifactCache(capacity=8, disk_dir=tmp_path)
    assert revived.get("fp-a") is None
    assert revived.get("fp-b") is not None
    assert revived.get("fp-c") is not None


def test_disk_capacity_validation_and_stats_dict(tmp_path):
    import pytest as _pytest

    with _pytest.raises(ValueError):
        ArtifactCache(disk_dir=tmp_path, disk_capacity=0)
    cache = ArtifactCache(disk_dir=tmp_path, disk_capacity=4)
    assert "evictions_disk" in cache.stats.as_dict()


def test_disk_evictions_recorded_in_metrics(tmp_path, small_artifact):
    from repro.metrics import MetricsRegistry

    registry = MetricsRegistry()
    cache = ArtifactCache(capacity=8, disk_dir=tmp_path, disk_capacity=1, metrics=registry)
    cache.put("fp-1", small_artifact)
    cache.put("fp-2", small_artifact)
    snapshot = registry.as_dict()
    assert snapshot["repro_cache_evictions_total"]["tier=disk"] == 1
    assert snapshot["repro_cache_stores_total"][""] == 2


# -- batch wall-clock timings -----------------------------------------------------


def test_batch_report_carries_per_query_and_per_batch_timings(small_graph):
    service = RoutingService(epsilon=0.5)
    for shift in (1, 2, 3):
        service.submit(small_graph, _permutation(small_graph, shift))
    report = service.route_batch()

    assert len(report.query_seconds) == 3
    assert all(seconds > 0 for seconds in report.query_seconds)
    assert report.route_seconds > 0
    assert report.wall_seconds >= report.route_seconds
    assert report.query_seconds_total == sum(report.query_seconds)
    assert report.query_seconds_max == max(report.query_seconds)
    assert (
        0
        < report.query_seconds_quantile(0.50)
        <= report.query_seconds_quantile(0.95)
        <= report.query_seconds_max
    )


def test_batch_timings_are_exposed_in_format_kv_output(small_graph):
    service = RoutingService(epsilon=0.5)
    service.submit(small_graph, _permutation(small_graph))
    report = service.route_batch()
    summary = report.summary()
    for key in (
        "route_seconds",
        "query_seconds_mean",
        "query_seconds_p50",
        "query_seconds_p95",
        "query_seconds_max",
    ):
        assert key in summary
    rendered = report.render(per_query=False)
    assert "query_seconds_p95" in rendered


def test_empty_batch_report_has_zero_timings():
    report = BatchReport()
    assert report.query_seconds == []
    assert report.query_seconds_mean == 0.0
    assert report.query_seconds_quantile(0.99) == 0.0
