"""The service's execution modes: persistent pools, process workers, lifecycle.

Covers the PR's parallelism contract:

* one long-lived executor per service instance, reused across batches (no
  per-batch pool churn);
* ``parallelism="processes"`` produces byte-identical
  :meth:`BatchReport.signature` to ``parallelism="threads"`` — the pool is a
  wall-clock choice, not a semantic one;
* ``close()`` / context-manager support on services, shard workers, and the
  cluster coordinator.
"""

import pytest

from repro.cluster import ClusterCoordinator
from repro.graphs.generators import random_regular_expander
from repro.metrics import MetricsRegistry
from repro.planner import ExecutionPlan
from repro.service import RoutingService
from repro.workloads import hotspot_workload, permutation_workload


def _counter_value(metrics, name, **labels):
    for family in metrics.families():
        if family.name == name:
            return family.labels(**labels).value
    return 0.0


@pytest.fixture(scope="module")
def graphs():
    return (
        random_regular_expander(24, degree=6, seed=1),
        random_regular_expander(24, degree=6, seed=2),
    )


def _run_two_batches(parallelism, graphs, metrics):
    g1, g2 = graphs
    with RoutingService(
        epsilon=0.5, max_workers=2, parallelism=parallelism, metrics=metrics
    ) as service:
        service.submit(g1, permutation_workload(g1, shift=3))
        service.submit(g2, hotspot_workload(g2, load=2, seed=7))
        service.submit(g1, permutation_workload(g1, shift=5))
        first = service.route_batch()
        service.submit(g1, permutation_workload(g1, shift=3))
        service.submit(g2, permutation_workload(g2, shift=9))
        second = service.route_batch()
    return first, second


def test_processes_signature_byte_identical_to_threads(graphs):
    threads_first, threads_second = _run_two_batches("threads", graphs, MetricsRegistry())
    processes_first, processes_second = _run_two_batches(
        "processes", graphs, MetricsRegistry()
    )
    assert threads_first.signature() == processes_first.signature()
    assert threads_second.signature() == processes_second.signature()
    # Sanity on the shared shape: batch 2 is fully warm in both modes.
    assert processes_second.cache_hits == processes_second.query_count
    assert processes_second.preprocess_rounds_incurred == 0
    assert processes_first.all_delivered and processes_second.all_delivered


def test_pool_is_created_once_and_reused_across_batches(graphs):
    g1, _ = graphs
    created = []

    def factory(workers):
        from concurrent.futures import ThreadPoolExecutor

        pool = ThreadPoolExecutor(max_workers=workers)
        created.append(pool)
        return pool

    metrics = MetricsRegistry()
    service = RoutingService(
        epsilon=0.5, max_workers=2, executor_factory=factory, metrics=metrics
    )
    try:
        for _ in range(3):
            service.submit(g1, permutation_workload(g1, shift=3))
            service.route_batch()
    finally:
        service.close()
    assert len(created) == 1
    assert _counter_value(metrics, "repro_service_pool_created_total", kind="threads") == 1
    assert _counter_value(metrics, "repro_service_pool_tasks_total", kind="route") == 3


def test_closed_service_rejects_new_batches(graphs):
    g1, _ = graphs
    service = RoutingService(epsilon=0.5, parallelism="threads")
    service.submit(g1, permutation_workload(g1, shift=3))
    service.route_batch()
    service.close()
    service.close()  # idempotent
    service.submit(g1, permutation_workload(g1, shift=3))
    with pytest.raises(RuntimeError):
        service.route_batch()
    # close() promises pending submissions survive for inspection.
    assert service.pending_count == 1


def test_invalid_parallelism_rejected():
    with pytest.raises(ValueError):
        RoutingService(parallelism="fibers")
    with pytest.raises(ValueError):
        RoutingService(parallelism="processes", executor_factory=lambda workers: None)


def test_worker_process_runner_cache_warms_up(graphs):
    """Across process batches, each worker loads an artifact at most once."""
    g1, _ = graphs
    metrics = MetricsRegistry()
    with RoutingService(
        epsilon=0.5, max_workers=1, parallelism="processes", metrics=metrics
    ) as service:
        for _ in range(3):
            for shift in (3, 5, 7):
                service.submit(g1, permutation_workload(g1, shift=shift))
            report = service.route_batch()
            assert report.all_delivered
    loads = _counter_value(metrics, "repro_service_pool_runner_loads_total", state="cold")
    warm = _counter_value(metrics, "repro_service_pool_runner_loads_total", state="warm")
    # One worker, one graph: exactly one cold resolution (the build itself
    # warms the builder), everything else served from the worker's cache.
    assert loads + warm == 9
    assert warm >= 8


def test_cluster_coordinator_parallelism_passthrough_and_close(graphs):
    g1, g2 = graphs
    with ClusterCoordinator(
        shard_count=2,
        cache_capacity=4,
        default_plan=ExecutionPlan(backend="deterministic", parallelism="threads", max_workers=2),
        metrics=MetricsRegistry(),
    ) as coordinator:
        for graph in (g1, g2):
            coordinator.submit(graph, permutation_workload(graph, shift=3))
        report = coordinator.dispatch()
        assert report.all_delivered
        for worker in coordinator.workers.values():
            assert worker.service.parallelism == "threads"
    # After close, every shard service rejects new work.
    coordinator.submit(g1, permutation_workload(g1, shift=3))
    with pytest.raises(RuntimeError):
        coordinator.dispatch()
