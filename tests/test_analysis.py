"""Tests for the complexity predictions, experiment drivers, and report formatting."""

import pytest

from repro.analysis.complexity import (
    deterministic_single_instance_bound,
    fit_polylog,
    fit_power_law,
    preprocessing_bound,
    query_bound,
)
from repro.analysis.experiments import (
    permutation_requests,
    run_single_instance_comparison,
    run_tradeoff_point,
    shifted_destination,
)
from repro.analysis.reporting import format_table
from repro.graphs.generators import circulant_expander


def test_bounds_are_monotone_in_n():
    for bound in (deterministic_single_instance_bound,):
        assert bound(4096) > bound(256)
    assert preprocessing_bound(4096, 0.5) > preprocessing_bound(256, 0.5)
    assert query_bound(4096, 0.5) > query_bound(256, 0.5)


def test_tradeoff_direction_of_the_bounds():
    # Larger epsilon: preprocessing up (the n^eps term dominates for large n),
    # query down (log^{1/eps}).
    large_n = 2 ** 40
    assert preprocessing_bound(large_n, 0.8) > preprocessing_bound(large_n, 0.3)
    assert query_bound(4096, 0.8) < query_bound(4096, 0.3)


def test_fit_power_law_recovers_exponent():
    xs = [2.0, 4.0, 8.0, 16.0]
    ys = [3 * x ** 1.5 for x in xs]
    fit = fit_power_law(xs, ys)
    assert fit.exponent == pytest.approx(1.5, abs=1e-6)
    assert fit.coefficient == pytest.approx(3.0, rel=1e-6)
    assert fit.r_squared == pytest.approx(1.0, abs=1e-9)
    assert fit.predict(32.0) == pytest.approx(3 * 32 ** 1.5, rel=1e-6)


def test_fit_power_law_requires_two_points():
    with pytest.raises(ValueError):
        fit_power_law([1.0], [1.0])


def test_fit_polylog_distinguishes_polylog_from_polynomial():
    xs = [2 ** i for i in range(4, 10)]
    polylog_ys = [(len(bin(x)) - 2) ** 3 for x in xs]
    polynomial_ys = [x ** 1.0 for x in xs]
    assert fit_polylog(xs, polylog_ys).exponent < fit_polylog(xs, polynomial_ys).exponent


def test_shifted_destination_is_a_permutation():
    for n in (16, 17, 18):
        images = {shifted_destination(v, n, shift=1) for v in range(n)}
        assert images == set(range(n))


def test_permutation_requests_respect_the_load_bound():
    graph = circulant_expander(24)
    requests = permutation_requests(graph, load=2)
    assert len(requests) == 48
    per_source = {}
    per_destination = {}
    for request in requests:
        per_source[request.source] = per_source.get(request.source, 0) + 1
        per_destination[request.destination] = per_destination.get(request.destination, 0) + 1
    assert max(per_source.values()) == 2
    assert max(per_destination.values()) == 2


def test_run_tradeoff_point_returns_consistent_measurements():
    row = run_tradeoff_point(n=48, epsilon=0.6, load=1, queries=2, degree=6, seed=2)
    assert row["all_delivered"]
    assert row["preprocess_rounds"] > 0
    assert row["mean_query_rounds"] > 0
    assert row["amortized_rounds_per_query"] > row["mean_query_rounds"] / 2


def test_run_single_instance_comparison_row_has_all_baselines():
    row = run_single_instance_comparison(n=48, epsilon=0.6, load=1, degree=6, seed=2)
    assert row["ours_delivered"]
    for key in ("naive_rounds", "randomized_rounds", "cs20_predicted", "gks_predicted"):
        assert row[key] > 0


def test_format_table_alignment_and_values():
    rows = [{"n": 64, "rounds": 1234.5678, "ok": True}, {"n": 128, "rounds": 8, "ok": False}]
    text = format_table(rows, ["n", "rounds", "ok"])
    lines = text.splitlines()
    assert lines[0].startswith("n")
    assert "yes" in text and "no" in text
    assert len(lines) == 4
    assert format_table([]) == "(no data)"
