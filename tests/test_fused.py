"""Fused batch kernels are result-identical to sequential execution.

The fused paths (``ExpanderRouter.route_many``, ``disperse_many``,
``schedule_token_batches``, and the service's fused batch dispatch) exist
purely for wall-clock: every observable output — deliveries, round counts,
per-phase breakdowns, token traces, batch signatures — must match what the
per-query sequential code produces.  Hypothesis drives random expanders and
workloads through both paths and compares exhaustively.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest.scheduler import (
    ScheduledToken,
    schedule_token_batches,
    schedule_tokens_along_paths,
)
from repro.core.router import ExpanderRouter
from repro.core.tokens import RoutingRequest
from repro.kernels import set_kernel
from repro.metrics import MetricsRegistry
from repro.planner import ExecutionPlan
from repro.service import RoutingService

settings.register_profile(
    "repro-fused", deadline=None, max_examples=12, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro-fused")


@pytest.fixture(scope="module")
def router():
    """One preprocessed router shared by every drawn workload batch."""
    graph = nx.random_regular_graph(4, 48, seed=11)
    r = ExpanderRouter(graph, epsilon=0.5)
    r.preprocess()
    return r


def _outcome_facts(outcome):
    """Every deterministic field of a RoutingOutcome, traces included."""
    return (
        outcome.delivered,
        outcome.total_tokens,
        outcome.query_rounds,
        outcome.preprocessing_rounds,
        outcome.load,
        outcome.max_intermediate_part_load,
        outcome.fallback_assignments,
        tuple(sorted(outcome.breakdown.items())),
        tuple(
            (t.source, t.destination, t.current_vertex, tuple(t.trace))
            for t in sorted(outcome.tokens, key=lambda t: t.token_id)
        ),
    )


def _draw_groups(data, nodes, max_groups=3):
    group_count = data.draw(st.integers(min_value=2, max_value=max_groups))
    groups = []
    for index in range(group_count):
        seed = data.draw(st.integers(min_value=0, max_value=2**16))
        rng = random.Random(seed)
        size = data.draw(st.integers(min_value=2, max_value=len(nodes)))
        sources = rng.sample(nodes, size)
        destinations = sources[:]
        rng.shuffle(destinations)
        groups.append(
            [RoutingRequest(source=s, destination=d) for s, d in zip(sources, destinations)]
        )
    return groups


@given(st.data())
def test_route_many_matches_sequential(router, data):
    nodes = sorted(router.graph.nodes())
    groups = _draw_groups(data, nodes)
    set_kernel("numpy")
    try:
        fused = router.route_many(groups)
        sequential = [router.route(group) for group in groups]
    finally:
        set_kernel(None)
    assert [_outcome_facts(o) for o in fused] == [_outcome_facts(o) for o in sequential]


@given(st.data())
def test_route_many_matches_reference_kernel(router, data):
    """The fused numpy recursion agrees with the pure-python reference."""
    nodes = sorted(router.graph.nodes())
    groups = _draw_groups(data, nodes, max_groups=2)
    set_kernel("numpy")
    try:
        fused = router.route_many(groups)
    finally:
        set_kernel(None)
    set_kernel("reference")
    try:
        reference = [router.route(group) for group in groups]
    finally:
        set_kernel(None)
    assert [_outcome_facts(o) for o in fused] == [_outcome_facts(o) for o in reference]


@given(
    st.lists(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=5),
            min_size=1,
            max_size=6,
        ),
        min_size=2,
        max_size=5,
    )
)
def test_schedule_token_batches_matches_solo(batches_raw):
    batches = []
    for raw_batch in batches_raw:
        tokens = []
        for index, raw in enumerate(raw_batch):
            path = [raw[0]]
            for vertex in raw[1:]:
                if vertex != path[-1]:
                    path.append(vertex)
            tokens.append(ScheduledToken(token_id=index, path=tuple(path)))
        batches.append(tokens)
    set_kernel("numpy")
    try:
        fused = schedule_token_batches(batches)
    finally:
        set_kernel(None)
    solo = [schedule_tokens_along_paths(batch) for batch in batches]
    for got, expected in zip(fused, solo):
        assert got.rounds == expected.rounds
        assert got.congestion == expected.congestion
        assert got.dilation == expected.dilation
        assert got.arrival_round == expected.arrival_round


def _submit_all(service, graph, workloads, plan):
    for requests in workloads:
        service.submit(graph, requests, plan=plan)
    return service.route_batch()


def _service_signatures(plan, graph, workloads):
    with RoutingService(metrics=MetricsRegistry()) as service:
        warm = _submit_all(service, graph, workloads, plan)
        repeat = _submit_all(service, graph, workloads, plan)
    return warm.signature(), repeat.signature()


@pytest.mark.parametrize(
    "variant",
    [
        ExecutionPlan(backend="deterministic", fused=True),
        ExecutionPlan(backend="deterministic", parallelism="processes", fused=True),
        ExecutionPlan(
            backend="deterministic",
            parallelism="processes",
            fused=True,
            artifact_transport="shm",
        ),
    ],
    ids=["threads-fused", "processes-fused", "processes-fused-shm"],
)
def test_service_fused_signature_parity(variant):
    """BatchReport.signature() is identical across fused/sequential and transports."""
    graph = nx.random_regular_graph(4, 48, seed=5)
    nodes = sorted(graph.nodes())
    workloads = []
    for seed in range(3):
        rng = random.Random(seed)
        destinations = nodes[:]
        rng.shuffle(destinations)
        workloads.append(
            [RoutingRequest(source=s, destination=d) for s, d in zip(nodes, destinations)]
        )
    baseline = ExecutionPlan(backend="deterministic")
    expected = _service_signatures(baseline, graph, workloads)
    assert _service_signatures(variant, graph, workloads) == expected


def test_fused_plan_is_physical_not_semantic():
    """Fusion and transport change the physical plan id only."""
    plain = ExecutionPlan(backend="deterministic")
    fused = ExecutionPlan(backend="deterministic", fused=True, artifact_transport="shm")
    assert plain.semantic_id == fused.semantic_id
    assert plain.plan_id != fused.plan_id
