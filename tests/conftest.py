"""Shared fixtures: small expanders, a prebuilt hierarchy, and a prebuilt router.

The expensive objects (hierarchical decomposition, preprocessed router) are
session-scoped so the full suite stays fast; tests that need to mutate state
build their own instances.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core.router import ExpanderRouter  # noqa: E402
from repro.graphs.generators import (  # noqa: E402
    circulant_expander,
    random_regular_expander,
    weighted_expander,
)
from repro.hierarchy.builder import HierarchyParameters, build_hierarchy  # noqa: E402


@pytest.fixture(scope="session")
def small_expander():
    """A 64-vertex deterministic circulant expander."""
    return circulant_expander(64)


@pytest.fixture(scope="session")
def regular_expander():
    """A 96-vertex random regular expander (seeded, hence reproducible)."""
    return random_regular_expander(96, degree=8, seed=7)


@pytest.fixture(scope="session")
def weighted_graph():
    """A small weighted expander for the MST tests."""
    return weighted_expander(80, degree=8, seed=3)


@pytest.fixture(scope="session")
def hierarchy(regular_expander):
    """A prebuilt hierarchical decomposition of the regular expander."""
    return build_hierarchy(regular_expander, HierarchyParameters(epsilon=0.5))


@pytest.fixture(scope="session")
def preprocessed_router(regular_expander):
    """A preprocessed router over the regular expander (shared, read-only)."""
    router = ExpanderRouter(regular_expander, epsilon=0.5)
    router.preprocess()
    return router
