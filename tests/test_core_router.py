"""End-to-end tests for the ExpanderRouter (Theorem 1.1, Corollary 1.2) and leaf routing."""

import networkx as nx
import pytest

from repro.core.cost import CostLedger
from repro.core.leaf import route_in_leaf
from repro.core.router import ExpanderRouter
from repro.core.tokens import RoutingRequest, Token
from repro.graphs.generators import circulant_expander, random_regular_expander


def _permutation_requests(graph, load):
    n = graph.number_of_nodes()
    requests = []
    for shift in range(1, load + 1):
        step = 3 if n % 3 else 1
        for vertex in sorted(graph.nodes()):
            requests.append(
                RoutingRequest(source=vertex, destination=(step * vertex + 7 * shift) % n)
            )
    return requests


# -- construction guards ---------------------------------------------------------


def test_router_rejects_disconnected_graph():
    graph = nx.Graph()
    graph.add_edges_from([(0, 1), (2, 3)])
    with pytest.raises(ValueError):
        ExpanderRouter(graph)


def test_router_rejects_high_degree_graph():
    star = nx.star_graph(200)
    with pytest.raises(ValueError):
        ExpanderRouter(star)


# -- preprocessing ------------------------------------------------------------------


def test_preprocess_builds_shufflers_for_every_internal_node(preprocessed_router):
    summary_nodes = preprocessed_router.decomposition.all_nodes()
    for node in summary_nodes:
        if not node.is_leaf and len(node.parts) > 1:
            assert node.shuffler is not None
            assert node.shuffler.verify_mixing(len(node.parts))


def test_preprocess_reports_positive_round_cost(preprocessed_router):
    assert preprocessed_router.preprocess_ledger.total("preprocess") > 0
    breakdown = preprocessed_router.preprocess_ledger.breakdown()
    assert any("shuffler" in key for key in breakdown)
    assert any("hierarchy" in key for key in breakdown)


# -- routing correctness ----------------------------------------------------------------


def test_route_delivers_a_permutation(preprocessed_router):
    graph = preprocessed_router.graph
    requests = _permutation_requests(graph, load=1)
    outcome = preprocessed_router.route(requests)
    assert outcome.all_delivered
    assert outcome.total_tokens == graph.number_of_nodes()
    assert outcome.query_rounds > 0


def test_route_delivers_higher_load_instances(preprocessed_router):
    graph = preprocessed_router.graph
    requests = _permutation_requests(graph, load=3)
    outcome = preprocessed_router.route(requests)
    assert outcome.all_delivered
    assert outcome.load == 3


def test_route_preserves_payloads(preprocessed_router):
    graph = preprocessed_router.graph
    n = graph.number_of_nodes()
    requests = [
        RoutingRequest(source=v, destination=(v + 1) % n, payload=f"payload-{v}")
        for v in graph.nodes()
    ]
    outcome = preprocessed_router.route(requests)
    assert outcome.all_delivered
    for token in outcome.tokens:
        assert token.payload == f"payload-{token.source}"
        assert token.current_vertex == (token.source + 1) % n


def test_route_is_deterministic(preprocessed_router):
    graph = preprocessed_router.graph
    requests = _permutation_requests(graph, load=2)
    first = preprocessed_router.route(requests)
    second = preprocessed_router.route(requests)
    assert first.query_rounds == second.query_rounds
    assert [t.current_vertex for t in first.tokens] == [t.current_vertex for t in second.tokens]


def test_route_rejects_overloaded_instance(preprocessed_router):
    graph = preprocessed_router.graph
    requests = [RoutingRequest(source=0, destination=1) for _ in range(3)]
    with pytest.raises(ValueError):
        preprocessed_router.route(requests, load=1)


def test_route_handles_self_addressed_tokens(preprocessed_router):
    graph = preprocessed_router.graph
    requests = [RoutingRequest(source=v, destination=v) for v in graph.nodes()]
    outcome = preprocessed_router.route(requests)
    assert outcome.all_delivered


def test_route_auto_preprocesses_when_needed():
    graph = circulant_expander(48)
    router = ExpanderRouter(graph, epsilon=0.5)
    requests = [RoutingRequest(source=v, destination=(v + 5) % 48) for v in graph.nodes()]
    outcome = router.route(requests)
    assert outcome.all_delivered
    assert router.preprocessed
    assert outcome.preprocessing_rounds > 0
    assert outcome.total_rounds_including_preprocessing > outcome.query_rounds


def test_query_rounds_exclude_preprocessing(preprocessed_router):
    graph = preprocessed_router.graph
    requests = _permutation_requests(graph, load=1)
    outcome = preprocessed_router.route(requests)
    assert outcome.preprocessing_rounds == preprocessed_router.preprocess_ledger.total("preprocess")
    assert outcome.query_rounds < outcome.total_rounds_including_preprocessing


def test_query_round_breakdown_contains_expected_phases(preprocessed_router):
    graph = preprocessed_router.graph
    requests = _permutation_requests(graph, load=1)
    outcome = preprocessed_router.route(requests)
    assert any("id-translation" in key for key in outcome.breakdown)
    assert any("task3" in key for key in outcome.breakdown)


# -- preprocessing/query tradeoff shape (Theorem 1.1) -------------------------------------


def test_larger_epsilon_gives_cheaper_queries():
    graph = random_regular_expander(96, degree=8, seed=7)
    shallow = ExpanderRouter(graph, epsilon=0.8)
    shallow.preprocess()
    deep = ExpanderRouter(graph, epsilon=0.34)
    deep.preprocess()
    requests = _permutation_requests(graph, load=1)
    shallow_outcome = shallow.route(requests)
    deep_outcome = deep.route(requests)
    assert shallow_outcome.all_delivered and deep_outcome.all_delivered
    assert shallow_outcome.query_rounds <= deep_outcome.query_rounds


def test_reusing_preprocessing_beats_rebuilding(preprocessed_router):
    graph = preprocessed_router.graph
    requests = _permutation_requests(graph, load=1)
    queries = 4
    reused_total = queries * preprocessed_router.route(requests).query_rounds
    rebuilt_total = queries * (
        preprocessed_router.route(requests).query_rounds
        + preprocessed_router.preprocess_ledger.total("preprocess")
    )
    assert reused_total < rebuilt_total


# -- leaf routing (Lemma 6.5) -----------------------------------------------------------


def test_route_in_leaf_places_tokens_by_marker(preprocessed_router):
    leaf = preprocessed_router.decomposition.leaves()[0]
    best = sorted(leaf.vertices)
    tokens = []
    for index, vertex in enumerate(best):
        token = Token(token_id=index, source=vertex, destination=vertex)
        token.destination_marker = (index + 1) % len(best)
        tokens.append(token)
    ledger = CostLedger()
    result = route_in_leaf(leaf, tokens, load=1, ledger=ledger)
    for token in tokens:
        assert result.placements[token.token_id] == best[token.destination_marker]
    assert result.rounds > 0
    assert ledger.total() == result.rounds


def test_route_in_leaf_rejects_internal_nodes_and_bad_markers(preprocessed_router):
    root = preprocessed_router.decomposition.root
    token = Token(token_id=0, source=0, destination=0)
    token.destination_marker = 0
    with pytest.raises(ValueError):
        route_in_leaf(root, [token], load=1, ledger=CostLedger())
    leaf = preprocessed_router.decomposition.leaves()[0]
    bad = Token(token_id=1, source=0, destination=0)
    bad.destination_marker = 10**6
    with pytest.raises(ValueError):
        route_in_leaf(leaf, [bad], load=1, ledger=CostLedger())
