"""Equivalence of the numpy kernels and the reference implementations.

The contract of ``repro.kernels`` is that ``REPRO_KERNEL=numpy`` changes wall
clock only: every schedule, cut estimate, sort placement, dispersion, and —
end to end — every backend :class:`RouteResult` is *identical* to the
reference dict-and-loop implementations.  These tests assert that identity
property-based over random expanders and workloads from :mod:`repro.workloads`.
"""

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import get_backend
from repro.congest.scheduler import ScheduledToken, schedule_tokens_along_paths
from repro.cutmatching.potential import WalkState, walk_matrix
from repro.graphs.cluster import build_cluster_graph, natural_fractional_matching
from repro.graphs.conductance import (
    estimate_conductance,
    exact_conductance,
    exact_sparsity,
    sweep_cut,
)
from repro.graphs.generators import random_regular_expander
from repro.kernels import KERNELS, active_kernel, kernel, set_kernel, use_numpy
from repro.sorting.expander_sort import SortItem, expander_sort, is_globally_sorted
from repro.workloads import (
    hotspot_workload,
    multi_token_workload,
    permutation_workload,
)

settings.register_profile(
    "kernels", deadline=None, max_examples=20, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("kernels")


# -- selection API ------------------------------------------------------------------------


def test_kernel_selection_api(monkeypatch):
    assert active_kernel() in KERNELS
    with kernel("reference"):
        assert not use_numpy()
        with kernel("numpy"):
            assert use_numpy()
        assert not use_numpy()
    monkeypatch.setenv("REPRO_KERNEL", "reference")
    assert active_kernel() == "reference"
    monkeypatch.setenv("REPRO_KERNEL", "numpy")
    assert active_kernel() == "numpy"
    monkeypatch.setenv("REPRO_KERNEL", "not-a-kernel")
    with pytest.raises(ValueError):
        active_kernel()
    with pytest.raises(ValueError):
        set_kernel("not-a-kernel")


# -- scheduler ---------------------------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=8, max_value=40),
    st.integers(min_value=1, max_value=3),
)
def test_scheduler_kernel_equivalent_on_expander_paths(seed, n, tokens_per_vertex):
    n += n % 2  # random_regular_expander needs even n * degree
    graph = random_regular_expander(n, degree=4, seed=seed % 97)
    nodes = sorted(graph.nodes())
    rng = np.random.default_rng(seed)
    tokens = []
    for index in range(tokens_per_vertex * n):
        source = nodes[int(rng.integers(0, n))]
        destination = nodes[int(rng.integers(0, n))]
        tokens.append(
            ScheduledToken(
                token_id=index, path=tuple(nx.shortest_path(graph, source, destination))
            )
        )
    with kernel("reference"):
        reference = schedule_tokens_along_paths(tokens)
    with kernel("numpy"):
        vectorized = schedule_tokens_along_paths(tokens)
    assert reference.rounds == vectorized.rounds
    assert reference.congestion == vectorized.congestion
    assert reference.dilation == vectorized.dilation
    assert reference.arrival_round == vectorized.arrival_round


def test_scheduler_kernel_equivalent_on_huge_sparse_vertex_ids():
    """Wide integer labels must intern instead of overflowing the edge codes."""
    a, b, c, d = 2**31, 2**31 + 5, 0, 2**33 - 1
    tokens = [
        ScheduledToken(token_id=0, path=(a, b)),
        ScheduledToken(token_id=1, path=(c, b, d)),
    ]
    with kernel("reference"):
        reference = schedule_tokens_along_paths(tokens)
    with kernel("numpy"):
        vectorized = schedule_tokens_along_paths(tokens)
    assert reference.rounds == vectorized.rounds
    assert reference.congestion == vectorized.congestion
    assert reference.arrival_round == vectorized.arrival_round


def test_scheduler_kernel_equivalent_on_float_vertices():
    """Float labels must intern, not truncate to aliased integer codes."""
    tokens = [
        ScheduledToken(token_id=0, path=(0.25, 0.75)),
        ScheduledToken(token_id=1, path=(0.1, 0.9)),
    ]
    with kernel("reference"):
        reference = schedule_tokens_along_paths(tokens)
    with kernel("numpy"):
        vectorized = schedule_tokens_along_paths(tokens)
    assert reference.rounds == vectorized.rounds
    assert reference.congestion == vectorized.congestion
    assert reference.arrival_round == vectorized.arrival_round


def test_scheduler_kernel_equivalent_on_non_integer_vertices():
    tokens = [
        ScheduledToken(token_id=i, path=tuple(f"v{j}" for j in range(i % 5 + 1)))
        for i in range(24)
    ]
    with kernel("reference"):
        reference = schedule_tokens_along_paths(tokens)
    with kernel("numpy"):
        vectorized = schedule_tokens_along_paths(tokens)
    assert reference.arrival_round == vectorized.arrival_round
    assert reference.rounds == vectorized.rounds


# -- conductance -------------------------------------------------------------------------


@given(st.integers(min_value=2, max_value=9), st.integers(min_value=0, max_value=10_000))
def test_exact_cut_measures_kernel_equivalent(n, seed):
    graph = nx.gnp_random_graph(n, 0.5, seed=seed)
    with kernel("reference"):
        phi_reference = exact_conductance(graph)
        psi_reference = exact_sparsity(graph)
    with kernel("numpy"):
        phi_vectorized = exact_conductance(graph)
        psi_vectorized = exact_sparsity(graph)
    assert phi_reference == phi_vectorized or (
        math.isinf(phi_reference) and math.isinf(phi_vectorized)
    )
    assert psi_reference == psi_vectorized or (
        math.isinf(psi_reference) and math.isinf(psi_vectorized)
    )


@given(st.integers(min_value=0, max_value=50), st.sampled_from([16, 24, 40, 64]))
def test_sweep_cut_kernel_equivalent(seed, n):
    graph = random_regular_expander(n, degree=4, seed=seed)
    with kernel("reference"):
        reference = sweep_cut(graph)
        estimate_reference = estimate_conductance(graph)
    with kernel("numpy"):
        vectorized = sweep_cut(graph)
        estimate_vectorized = estimate_conductance(graph)
    assert reference == vectorized
    assert estimate_reference == estimate_vectorized


# -- walk matrices -----------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=6))
def test_walk_matrix_kernel_bit_identical(seed, parts):
    n = parts * 8
    graph = random_regular_expander(n, degree=4, seed=seed % 31)
    nodes = sorted(graph.nodes())
    partition = [nodes[i::parts] for i in range(parts)]
    cluster = build_cluster_graph(graph, partition)
    rng = np.random.default_rng(seed)
    indices = list(range(parts))
    rng.shuffle(indices)
    pairs = list(zip(indices[::2], indices[1::2]))
    matching = natural_fractional_matching(
        cluster, [(partition[i][0], partition[j][0]) for i, j in pairs]
    )
    from repro.kernels.matrixops import walk_matrix_numpy

    with kernel("reference"):
        reference = walk_matrix(parts, matching)
        state_reference = WalkState(parts)
        potential_reference = state_reference.apply(matching)
    with kernel("numpy"):
        # walk_matrix() gates the kernel by size, so exercise it directly too.
        vectorized = walk_matrix_numpy(parts, matching)
        dispatched = walk_matrix(parts, matching)
        state_vectorized = WalkState(parts)
        potential_vectorized = state_vectorized.apply(matching)
    assert np.array_equal(reference, vectorized)
    assert np.array_equal(reference, dispatched)
    assert potential_reference == potential_vectorized


def test_walk_matrix_dispatch_above_size_gate():
    size = 64
    matching = {(i, i + size // 2): 0.5 for i in range(size // 2)}
    with kernel("reference"):
        reference = walk_matrix(size, matching)
    with kernel("numpy"):
        vectorized = walk_matrix(size, matching)
    assert np.array_equal(reference, vectorized)


def test_walk_matrix_kernel_rejects_bad_matchings():
    from repro.kernels.matrixops import walk_matrix_numpy

    for build in (
        walk_matrix,  # small sizes dispatch to the reference loop
        walk_matrix_numpy,
    ):
        with pytest.raises(ValueError):
            build(3, {(0, 7): 0.5})
        with pytest.raises(ValueError):
            build(2, {(0, 1): -0.5})
        with pytest.raises(ValueError):
            build(2, {(0, 1): 1.5})  # degree > 1


# -- comparator sort ---------------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=24),
    st.integers(min_value=1, max_value=4),
    st.data(),
)
def test_comparator_sort_kernel_identical_placements(vertex_count, load, data):
    vertices = list(range(vertex_count))
    items_at = {}
    for vertex in vertices:
        count = data.draw(st.integers(min_value=0, max_value=load))
        items_at[vertex] = [
            SortItem(
                key=data.draw(st.integers(min_value=0, max_value=5)),
                tag=data.draw(st.integers(min_value=0, max_value=3)),
                value=(vertex, slot),
            )
            for slot in range(count)
        ]
    with kernel("reference"):
        reference = expander_sort(
            vertices, {v: list(items) for v, items in items_at.items()}, load,
            engine="comparator",
        )
    with kernel("numpy"):
        vectorized = expander_sort(
            vertices, {v: list(items) for v, items in items_at.items()}, load,
            engine="comparator",
        )
    assert reference.rounds == vectorized.rounds
    assert reference.network_depth == vectorized.network_depth
    assert reference.max_load == vectorized.max_load
    assert reference.comparator_exchanges == vectorized.comparator_exchanges
    for vertex in vertices:
        left = [(i.key, i.tag, i.value) for i in reference.placement.items_at.get(vertex, [])]
        right = [(i.key, i.tag, i.value) for i in vectorized.placement.items_at.get(vertex, [])]
        assert left == right
    assert is_globally_sorted(vectorized.placement, vertices)


# -- end to end: backend RouteResults -----------------------------------------------------


def _route_under(kernel_name, graph, workload, backend_name, **params):
    """Build the backend and route the workload entirely under one kernel."""
    with kernel(kernel_name):
        backend = get_backend(backend_name, graph, **params)
        info = backend.preprocess()
        result = backend.route(list(workload.requests), load=workload.load)
    return info, result


@settings(max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.sampled_from([24, 32]),
    st.integers(min_value=0, max_value=20),
    st.sampled_from(["permutation", "hotspot", "multi-token"]),
)
def test_deterministic_backend_route_results_kernel_identical(n, seed, shape):
    graph = random_regular_expander(n, degree=6, seed=seed)
    if shape == "permutation":
        workload = permutation_workload(graph, shift=seed % (n - 1) + 1)
    elif shape == "hotspot":
        workload = hotspot_workload(graph, load=2, seed=seed)
    else:
        workload = multi_token_workload(graph, load=2)
    info_reference, reference = _route_under(
        "reference", graph, workload, "deterministic", epsilon=0.5
    )
    info_vectorized, vectorized = _route_under(
        "numpy", graph, workload, "deterministic", epsilon=0.5
    )
    # Preprocessing (hierarchy, shufflers, round accounting) must agree...
    assert info_reference.rounds == info_vectorized.rounds
    # ...and so must the full normalized route result.
    assert reference.delivered == vectorized.delivered
    assert reference.total_tokens == vectorized.total_tokens
    assert reference.query_rounds == vectorized.query_rounds
    assert reference.preprocess_rounds == vectorized.preprocess_rounds
    assert reference.load == vectorized.load
    assert reference.all_delivered and vectorized.all_delivered
    # Token-level identity: every token ends on the same vertex via the same trace.
    for left, right in zip(reference.tokens, vectorized.tokens):
        assert left.token_id == right.token_id
        assert left.current_vertex == right.current_vertex
        assert left.trace == right.trace


@settings(max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=20), st.sampled_from(["direct", "randomized-gks"]))
def test_baseline_backend_route_results_kernel_identical(seed, backend_name):
    graph = random_regular_expander(24, degree=6, seed=seed)
    workload = permutation_workload(graph, shift=seed % 23 + 1)
    info_reference, reference = _route_under("reference", graph, workload, backend_name)
    info_vectorized, vectorized = _route_under("numpy", graph, workload, backend_name)
    assert info_reference.rounds == info_vectorized.rounds
    assert reference.delivered == vectorized.delivered
    assert reference.query_rounds == vectorized.query_rounds
    assert reference.preprocess_rounds == vectorized.preprocess_rounds


def test_route_on_shared_preprocessed_router_is_kernel_independent(preprocessed_router):
    """Swapping the kernel *after* preprocessing must not change query results."""
    graph = preprocessed_router.graph
    requests = permutation_workload(graph, shift=5).requests
    with kernel("reference"):
        reference = preprocessed_router.route(list(requests))
    with kernel("numpy"):
        vectorized = preprocessed_router.route(list(requests))
    assert reference.query_rounds == vectorized.query_rounds
    assert reference.delivered == vectorized.delivered
    assert reference.breakdown == vectorized.breakdown
