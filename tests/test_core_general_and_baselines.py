"""Tests for the general-graph reduction (Appendix E) and the routing baselines."""

import pytest

from repro.baselines.cs20_model import (
    RebuildPerQueryRouter,
    cs20_predicted_rounds,
    gks_predicted_rounds,
)
from repro.baselines.direct_routing import route_directly
from repro.baselines.randomized_gks import route_randomized
from repro.core.general import GeneralGraphRouter
from repro.core.tokens import RoutingRequest
from repro.graphs.generators import circulant_expander, skewed_degree_expander


# -- general-graph router (Appendix E) ----------------------------------------------


@pytest.fixture(scope="module")
def skewed_graph():
    return skewed_degree_expander(48, hub_count=2, degree=6, seed=5)


def test_general_router_delivers_degree_proportional_loads(skewed_graph):
    router = GeneralGraphRouter(skewed_graph, epsilon=0.5)
    router.preprocess()
    n = skewed_graph.number_of_nodes()
    # Hubs send several tokens (proportional to their degree), others send one.
    requests = []
    for vertex in sorted(skewed_graph.nodes()):
        copies = 1 + skewed_graph.degree(vertex) // 12
        for copy in range(copies):
            requests.append(
                RoutingRequest(source=vertex, destination=(vertex * 5 + copy + 1) % n)
            )
    outcome = router.route(requests)
    assert outcome.delivered == outcome.total_tokens


def test_general_router_split_graph_is_constant_degree(skewed_graph):
    router = GeneralGraphRouter(skewed_graph)
    max_split_degree = max(degree for _, degree in router.split.split.degree())
    max_original_degree = max(degree for _, degree in skewed_graph.degree())
    assert max_split_degree < max_original_degree
    assert max_split_degree <= 10


# -- naive baseline ------------------------------------------------------------------


def test_direct_routing_delivers_everything(small_expander):
    n = small_expander.number_of_nodes()
    requests = [RoutingRequest(source=v, destination=(v + 7) % n) for v in small_expander.nodes()]
    outcome = route_directly(small_expander, requests)
    assert outcome.delivered == n
    assert outcome.rounds >= 1
    assert outcome.congestion >= 1
    for index, request in enumerate(
        sorted(requests, key=lambda r: (repr(r.source), repr(r.destination)))
    ):
        assert outcome.final_positions[index] == request.destination


def test_direct_routing_congestion_grows_with_load(small_expander):
    n = small_expander.number_of_nodes()
    light = [RoutingRequest(source=v, destination=(v + 1) % n) for v in small_expander.nodes()]
    heavy = light + [
        RoutingRequest(source=v, destination=(v + n // 2) % n) for v in small_expander.nodes()
    ]
    assert route_directly(small_expander, heavy).rounds >= route_directly(small_expander, light).rounds


# -- randomized baseline ----------------------------------------------------------------


def test_randomized_routing_is_seed_reproducible(small_expander):
    n = small_expander.number_of_nodes()
    requests = [RoutingRequest(source=v, destination=(v + 9) % n) for v in small_expander.nodes()]
    a = route_randomized(small_expander, requests, seed=3)
    b = route_randomized(small_expander, requests, seed=3)
    assert a.rounds == b.rounds
    assert a.delivered == n
    assert a.walk_steps >= 1


def test_randomized_routing_different_seeds_may_differ(small_expander):
    n = small_expander.number_of_nodes()
    requests = [RoutingRequest(source=v, destination=(v + 9) % n) for v in small_expander.nodes()]
    rounds = {route_randomized(small_expander, requests, seed=s).rounds for s in range(4)}
    assert len(rounds) >= 1  # sanity; usually > 1, but never an error


# -- CS20 / GKS comparators ------------------------------------------------------------


def test_predicted_bounds_are_increasing_and_ordered():
    for n in (256, 1024, 4096):
        assert cs20_predicted_rounds(4 * n) > cs20_predicted_rounds(n)
        assert gks_predicted_rounds(4 * n) > gks_predicted_rounds(n)
    # Asymptotically CS20's exponent dominates GKS's.
    assert cs20_predicted_rounds(2**20) > gks_predicted_rounds(2**20)


def test_rebuild_per_query_router_is_correct_but_more_expensive():
    graph = circulant_expander(48)
    n = graph.number_of_nodes()
    requests = [RoutingRequest(source=v, destination=(v + 5) % n) for v in graph.nodes()]
    rebuild = RebuildPerQueryRouter(graph, epsilon=0.5)
    outcome = rebuild.route(requests)
    assert outcome.all_delivered
    from repro.core.router import ExpanderRouter

    ours = ExpanderRouter(graph, epsilon=0.5)
    ours.preprocess()
    reused = ours.route(requests)
    assert outcome.query_rounds > reused.query_rounds
