"""Tests for cut measures, spectral estimators, and expander checks (Section 2)."""

import math

import networkx as nx
import pytest

from repro.graphs.conductance import (
    cheeger_bounds,
    cut_conductance,
    cut_edges,
    cut_sparsity,
    diameter_upper_bound,
    estimate_conductance,
    exact_conductance,
    exact_sparsity,
    is_expander,
    spectral_gap,
    sweep_cut,
    volume,
)


def test_volume_counts_degrees():
    graph = nx.path_graph(4)
    assert volume(graph, [0, 1]) == 1 + 2
    assert volume(graph, graph.nodes()) == 2 * graph.number_of_edges()


def test_cut_edges_on_path():
    graph = nx.path_graph(4)
    assert cut_edges(graph, [0, 1]) == 1
    assert cut_edges(graph, [0, 2]) == 3


def test_cut_conductance_of_balanced_cut():
    graph = nx.complete_graph(6)
    side = {0, 1, 2}
    # 9 crossing edges; each side has volume 15.
    assert cut_conductance(graph, side) == pytest.approx(9 / 15)


def test_cut_conductance_trivial_cut_is_infinite():
    graph = nx.complete_graph(4)
    assert cut_conductance(graph, []) == math.inf
    assert cut_conductance(graph, graph.nodes()) == math.inf


def test_cut_sparsity_of_single_vertex():
    graph = nx.cycle_graph(6)
    assert cut_sparsity(graph, [0]) == 2.0


def test_exact_conductance_of_cycle():
    # A 6-cycle's worst cut is a contiguous half: 2 crossing edges / volume 6.
    graph = nx.cycle_graph(6)
    assert exact_conductance(graph) == pytest.approx(2 / 6)


def test_exact_sparsity_of_complete_graph():
    graph = nx.complete_graph(6)
    # Any balanced cut has 9 edges over 3 vertices.
    assert exact_sparsity(graph) == pytest.approx(3.0)


def test_cheeger_inequality_sandwiches_exact_conductance():
    graph = nx.random_regular_graph(4, 10, seed=1)
    lower, upper = cheeger_bounds(graph)
    exact = exact_conductance(graph)
    assert lower <= exact + 1e-9
    assert exact <= upper + 1e-9


def test_sweep_cut_is_an_upper_bound():
    graph = nx.random_regular_graph(4, 12, seed=2)
    exact = exact_conductance(graph)
    assert sweep_cut(graph).conductance >= exact - 1e-9


def test_spectral_gap_positive_for_connected_graph(small_expander):
    assert spectral_gap(small_expander) > 0.02


def test_estimate_conductance_uses_brute_force_for_tiny_graphs():
    graph = nx.cycle_graph(6)
    assert estimate_conductance(graph) == pytest.approx(exact_conductance(graph))


def test_is_expander_accepts_good_and_rejects_disconnected(small_expander):
    assert is_expander(small_expander, 0.05)
    disconnected = nx.Graph()
    disconnected.add_edges_from([(0, 1), (2, 3)])
    assert not is_expander(disconnected, 0.01)


def test_is_expander_rejects_barbell():
    barbell = nx.barbell_graph(8, 0)
    assert not is_expander(barbell, 0.3)


def test_diameter_upper_bound_fact_2_1(small_expander):
    phi = estimate_conductance(small_expander)
    bound = diameter_upper_bound(small_expander.number_of_nodes(), phi)
    assert nx.diameter(small_expander) <= bound
