"""Tests for the applications: MST, expander decomposition, clique listing, equivalence, summarization."""

import networkx as nx
import pytest

from repro.applications.clique import brute_force_cliques, enumerate_cliques
from repro.applications.expander_decomposition import decompose
from repro.applications.mst import boruvka_mst
from repro.applications.sorting_equivalence import routing_via_sorting, sorting_via_routing
from repro.applications.summarization import global_aggregate, top_k_frequent
from repro.graphs.conductance import sweep_cut
from repro.graphs.generators import (
    barbell_of_expanders,
    erdos_renyi_graph,
    planted_clique_graph,
    two_expander_graph,
)


# -- MST (Corollary 1.3) ---------------------------------------------------------------


def test_boruvka_mst_matches_kruskal(weighted_graph):
    result = boruvka_mst(weighted_graph, epsilon=0.5)
    reference = nx.minimum_spanning_tree(weighted_graph)
    assert result.total_weight == pytest.approx(reference.size(weight="weight"))
    assert len(result.edges) == weighted_graph.number_of_nodes() - 1


def test_boruvka_mst_edges_form_a_spanning_tree(weighted_graph):
    result = boruvka_mst(weighted_graph, epsilon=0.5)
    tree = nx.Graph()
    tree.add_nodes_from(weighted_graph.nodes())
    tree.add_edges_from(result.edges)
    assert nx.is_connected(tree)
    assert tree.number_of_edges() == tree.number_of_nodes() - 1


def test_boruvka_mst_uses_logarithmically_many_phases_and_routing_queries(weighted_graph):
    result = boruvka_mst(weighted_graph, epsilon=0.5)
    import math

    bound = 2 * math.ceil(math.log2(weighted_graph.number_of_nodes())) + 4
    assert result.phases <= bound
    assert result.routing_queries <= result.phases
    assert result.rounds > 0


def test_boruvka_mst_reuses_a_provided_router(weighted_graph, preprocessed_router):
    # A router for a different graph must not be silently accepted.
    from repro.core.router import ExpanderRouter

    router = ExpanderRouter(weighted_graph, epsilon=0.5)
    router.preprocess()
    result = boruvka_mst(weighted_graph, router=router)
    assert result.preprocessing_rounds == router.preprocess_ledger.total("preprocess")


# -- expander decomposition --------------------------------------------------------------


def test_decompose_cuts_the_planted_sparse_cut():
    graph = two_expander_graph(64, bridge_edges=2, degree=6, seed=1)
    decomposition = decompose(graph, phi=0.05)
    assert len(decomposition.components) == 2
    assert len(decomposition.crossing_edges) == 2
    assert decomposition.removed_edge_fraction(graph) < 0.05


def test_decompose_certifies_components_as_expanders():
    graph = barbell_of_expanders(parts=3, part_size=20, degree=6, seed=2)
    decomposition = decompose(graph, phi=0.05)
    for component in decomposition.components:
        if len(component) <= 4:
            continue
        subgraph = graph.subgraph(component)
        assert sweep_cut(subgraph).conductance >= 0.05 - 1e-9


def test_decompose_keeps_a_single_expander_whole(small_expander):
    decomposition = decompose(small_expander, phi=0.05)
    assert len(decomposition.components) == 1
    assert decomposition.crossing_edges == []


def test_decompose_partitions_all_vertices():
    graph = erdos_renyi_graph(80, 0.08, seed=3)
    decomposition = decompose(graph, phi=0.1)
    covered = set()
    for component in decomposition.components:
        assert not (covered & component)
        covered |= component
    assert covered == set(graph.nodes())


# -- k-clique enumeration (Corollary 1.4) ----------------------------------------------------


@pytest.mark.parametrize("k", [3, 4])
def test_enumerate_cliques_matches_brute_force_on_planted_graph(k):
    graph = planted_clique_graph(48, clique_size=5, p=0.08, seed=4)
    listed = enumerate_cliques(graph, k=k)
    expected = set(brute_force_cliques(graph, k))
    assert set(listed.cliques) == expected
    assert listed.rounds > 0


def test_enumerate_cliques_on_sparse_cut_graph_counts_cross_cliques():
    graph = two_expander_graph(40, bridge_edges=4, degree=6, seed=6)
    # Add a triangle straddling the cut to make sure cross-component cliques exist.
    graph.add_edge(0, 20)
    graph.add_edge(0, 21)
    graph.add_edge(20, 21)
    listed = enumerate_cliques(graph, k=3)
    expected = set(brute_force_cliques(graph, 3))
    assert set(listed.cliques) == expected
    assert (0, 20, 21) in set(listed.cliques)


def test_enumerate_cliques_rejects_k_below_three():
    with pytest.raises(ValueError):
        enumerate_cliques(nx.complete_graph(4), k=2)


def test_enumerate_cliques_round_cost_grows_with_n():
    small = enumerate_cliques(planted_clique_graph(32, 4, p=0.1, seed=1), k=3)
    large = enumerate_cliques(planted_clique_graph(96, 4, p=0.1, seed=1), k=3)
    assert large.rounds >= small.rounds


# -- routing <-> sorting equivalence (Appendix F) ----------------------------------------------


def _trivial_routing_oracle(demands):
    delivered = {}
    for origin, pairs in demands.items():
        for destination, item in pairs:
            delivered.setdefault(destination, []).append(item)
    return delivered


def _trivial_sorting_oracle(keyed):
    vertices = sorted(keyed.keys())
    everything = sorted((pair for pairs in keyed.values() for pair in pairs), key=lambda p: p[0])
    per_vertex = max(1, -(-len(everything) // len(vertices)))
    return {
        vertex: everything[i * per_vertex: (i + 1) * per_vertex]
        for i, vertex in enumerate(vertices)
    }


def test_sorting_via_routing_sorts_and_uses_one_call_per_layer():
    vertices = list(range(8))
    items_at = {v: [((v * 5) % 7, f"item-{v}-{s}") for s in range(2)] for v in vertices}
    record = sorting_via_routing(items_at, _trivial_routing_oracle, load=2)
    flat_keys = [key for v in vertices for key, _ in record.placement[v]]
    assert flat_keys == sorted(flat_keys)
    assert record.routing_calls == record.network_depth
    total_items = sum(len(record.placement[v]) for v in vertices)
    assert total_items == 16


def test_routing_via_sorting_delivers_every_token_with_constant_calls():
    vertices = list(range(8))
    tokens_at = {v: [((v * 3) % 8, f"token-{v}")] for v in vertices}
    record = routing_via_sorting(tokens_at, _trivial_sorting_oracle, load=1)
    assert record.sorting_calls == 3
    for v in vertices:
        assert f"token-{v}" in record.delivered[(v * 3) % 8]


def test_routing_via_sorting_handles_multiple_tokens_per_destination():
    vertices = list(range(6))
    tokens_at = {v: [(0, f"a-{v}"), (5, f"b-{v}")] for v in vertices}
    record = routing_via_sorting(tokens_at, _trivial_sorting_oracle, load=2)
    assert sorted(record.delivered[0]) == sorted(f"a-{v}" for v in vertices)
    assert sorted(record.delivered[5]) == sorted(f"b-{v}" for v in vertices)


# -- data summarization ------------------------------------------------------------------------


def test_top_k_frequent_returns_true_top_items():
    items_at = {v: [v % 4, v % 2] for v in range(32)}
    result = top_k_frequent(items_at, k=2)
    # Item 0 appears 8 (v%4) + 16 (v%2) = 24 times; item 1 appears 8 + 16 = 24.
    top_items = dict(result.top_items)
    assert top_items[0] == 24 and top_items[1] == 24
    assert result.rounds > 0


def test_top_k_frequent_scales_rounds_with_load():
    light = top_k_frequent({v: [v % 3] for v in range(16)}, k=1)
    heavy = top_k_frequent({v: [v % 3] * 4 for v in range(16)}, k=1)
    assert heavy.rounds > light.rounds


def test_global_aggregate_operations():
    values = {v: v for v in range(10)}
    assert global_aggregate(values, "sum").value == 45
    assert global_aggregate(values, "max").value == 9
    assert global_aggregate(values, "min").value == 0
    with pytest.raises(ValueError):
        global_aggregate(values, "median")
