"""Tests for path collections, embeddings (Section 2), and the matching embedder (Lemma 2.3)."""

import networkx as nx
import pytest

from repro.embedding.embedding import Embedding, compose, identity_embedding, union
from repro.embedding.matching_embed import embed_matching
from repro.embedding.paths import Path, PathCollection
from repro.graphs.generators import two_expander_graph


# -- paths ---------------------------------------------------------------------


def test_path_basic_properties():
    path = Path((0, 1, 2, 3))
    assert path.source == 0
    assert path.target == 3
    assert path.length == 3
    assert list(path.edges()) == [(0, 1), (1, 2), (2, 3)]


def test_path_reverse_and_concatenate():
    a = Path((0, 1, 2))
    b = Path((2, 3))
    assert a.concatenate(b).vertices == (0, 1, 2, 3)
    assert a.reversed().vertices == (2, 1, 0)
    with pytest.raises(ValueError):
        b.concatenate(a)


def test_path_collection_congestion_dilation_quality():
    collection = PathCollection([Path((0, 1, 2)), Path((1, 2, 3)), Path((0, 1))])
    assert collection.dilation == 2
    assert collection.congestion == 2  # edge (1,2) is shared by two paths
    assert collection.quality == 4
    assert collection.edge_load(1, 2) == 2
    assert collection.edge_load(5, 6) == 0


def test_path_collection_union_and_round_cost():
    a = PathCollection([Path((0, 1))])
    b = PathCollection([Path((1, 2, 3))])
    merged = PathCollection.union([a, b])
    assert len(merged) == 2
    assert merged.deterministic_round_cost(tokens_per_path=2) == 2 * merged.quality ** 2


# -- embeddings -------------------------------------------------------------------


def test_identity_embedding_has_quality_dominated_by_congestion_one():
    graph = nx.cycle_graph(5)
    embedding = identity_embedding(graph)
    assert len(embedding) == 5
    assert embedding.quality == 1 + 1  # congestion 1, dilation 1


def test_embedding_path_orientation():
    embedding = Embedding()
    embedding.add_edge(0, 3, Path((0, 1, 2, 3)))
    assert embedding.path_for(0, 3).vertices == (0, 1, 2, 3)
    assert embedding.path_for(3, 0).vertices == (3, 2, 1, 0)


def test_embedding_rejects_mismatched_endpoints():
    embedding = Embedding()
    with pytest.raises(ValueError):
        embedding.add_edge(0, 3, Path((0, 1, 2)))


def test_embedding_composition_flattens_paths():
    # H1 edge (0, 2) -> H2 path (0, 1, 2); H2 edges -> G paths of length 2.
    inner = Embedding(name="inner")
    inner.add_edge(0, 2, Path((0, 1, 2)))
    outer = Embedding(name="outer")
    outer.add_edge(0, 1, Path((0, 10, 1)))
    outer.add_edge(1, 2, Path((1, 11, 2)))
    flattened = compose(outer, inner)
    assert flattened.path_for(0, 2).vertices == (0, 10, 1, 11, 2)


def test_embedding_union_rejects_duplicates():
    a = Embedding()
    a.add_edge(0, 1, Path((0, 1)))
    b = Embedding()
    b.add_edge(0, 1, Path((0, 1)))
    with pytest.raises(ValueError):
        union([a, b])


def test_embed_path_maps_virtual_paths():
    embedding = Embedding()
    embedding.add_edge(0, 1, Path((0, 5, 1)))
    embedding.add_edge(1, 2, Path((1, 6, 2)))
    assert embedding.embed_path(Path((0, 1, 2))).vertices == (0, 5, 1, 6, 2)


# -- matching embedder (Lemma 2.3) -------------------------------------------------


def test_embed_matching_saturates_sources_on_an_expander(small_expander):
    sources = list(range(12))
    sinks = list(range(30, 60))
    result = embed_matching(small_expander, sources, sinks, psi=0.2)
    assert result.saturated
    assert set(result.matching.keys()) == set(sources)
    assert len(set(result.matching.values())) == len(sources)  # distinct sinks
    assert result.quality > 0


def test_embed_matching_paths_connect_the_matched_pairs(small_expander):
    sources = list(range(8))
    sinks = list(range(40, 60))
    result = embed_matching(small_expander, sources, sinks, psi=0.2)
    for source, sink in result.matching.items():
        path = result.embedding.path_for(source, sink)
        assert path.source == source and path.target == sink
        for u, v in zip(path.vertices, path.vertices[1:]):
            assert small_expander.has_edge(u, v)


def test_embed_matching_rejects_overlapping_sets(small_expander):
    with pytest.raises(ValueError):
        embed_matching(small_expander, [0, 1], [1, 2, 3])


def test_embed_matching_rejects_more_sources_than_sinks(small_expander):
    with pytest.raises(ValueError):
        embed_matching(small_expander, [0, 1, 2], [10, 11])


def test_embed_matching_reports_cut_on_bottlenecked_graph():
    # Two expanders joined by a single edge: matching many sources across the
    # bridge cannot saturate, and the fallback must report a sparse cut.
    graph = two_expander_graph(40, bridge_edges=1, degree=6, seed=1)
    sources = list(range(15))            # left side
    sinks = list(range(20, 40))          # right side
    result = embed_matching(graph, sources, sinks, psi=0.4, max_cap_doublings=1)
    if not result.saturated:
        assert result.cut
        assert result.cut_sparsity < 1.0
    else:
        # With generous caps a single bridge can still carry all 15 paths;
        # in that case the congestion must reflect the bottleneck.
        assert result.embedding.path_collection().congestion >= 10
