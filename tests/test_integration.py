"""Integration tests: the whole pipeline on several graph families and workloads."""

import networkx as nx
import pytest

from repro.analysis.experiments import permutation_requests
from repro.applications.mst import boruvka_mst
from repro.baselines.direct_routing import route_directly
from repro.core.router import ExpanderRouter
from repro.core.tokens import RoutingRequest
from repro.graphs.generators import (
    circulant_expander,
    hypercube_graph,
    margulis_expander,
    random_regular_expander,
)


@pytest.mark.parametrize(
    "graph_factory",
    [
        lambda: circulant_expander(64),
        lambda: margulis_expander(8),
        lambda: random_regular_expander(64, degree=6, seed=11),
        lambda: hypercube_graph(6),
    ],
    ids=["circulant", "margulis", "random-regular", "hypercube"],
)
def test_router_delivers_permutations_on_multiple_expander_families(graph_factory):
    graph = graph_factory()
    router = ExpanderRouter(graph, epsilon=0.5)
    router.preprocess()
    requests = permutation_requests(graph, load=2)
    outcome = router.route(requests)
    assert outcome.all_delivered
    assert outcome.query_rounds > 0


def test_many_queries_reuse_the_same_preprocessing():
    graph = random_regular_expander(64, degree=6, seed=11)
    router = ExpanderRouter(graph, epsilon=0.5)
    summary = router.preprocess()
    rounds = []
    for shift in range(1, 5):
        n = graph.number_of_nodes()
        requests = [
            RoutingRequest(source=v, destination=(v + shift * 3) % n) for v in graph.nodes()
        ]
        outcome = router.route(requests)
        assert outcome.all_delivered
        rounds.append(outcome.query_rounds)
    # Preprocessing happened once; its cost did not change across queries.
    assert router.preprocess_ledger.total("preprocess") == summary.rounds
    # Per-query cost is stable (same load, same structure).
    assert max(rounds) <= 2 * min(rounds)


def test_router_and_naive_baseline_agree_on_final_positions():
    graph = circulant_expander(48)
    n = graph.number_of_nodes()
    requests = [RoutingRequest(source=v, destination=(v * 5 + 3) % n) for v in graph.nodes()]
    router = ExpanderRouter(graph, epsilon=0.5)
    router.preprocess()
    ours = router.route(requests)
    naive = route_directly(graph, requests)
    assert ours.all_delivered
    assert naive.delivered == len(requests)
    ours_final = sorted((token.source, token.current_vertex) for token in ours.tokens)
    expected = sorted((request.source, request.destination) for request in requests)
    assert ours_final == expected


def test_mst_pipeline_on_a_fresh_weighted_expander():
    from repro.graphs.generators import weighted_expander

    graph = weighted_expander(64, degree=6, seed=9)
    result = boruvka_mst(graph, epsilon=0.6)
    reference = nx.minimum_spanning_tree(graph).size(weight="weight")
    assert result.total_weight == pytest.approx(reference)
    assert result.rounds > 0
    assert result.preprocessing_rounds > 0


def test_full_pipeline_statistics_are_internally_consistent():
    graph = random_regular_expander(96, degree=8, seed=3)
    router = ExpanderRouter(graph, epsilon=0.5)
    summary = router.preprocess()
    assert summary.node_count >= summary.shuffler_count
    assert summary.best_vertex_count <= graph.number_of_nodes()
    assert summary.rho_best >= 1.0
    requests = permutation_requests(graph, load=2)
    outcome = router.route(requests)
    assert outcome.all_delivered
    assert 0.0 <= outcome.dispersion_window_fraction <= 1.0
    assert outcome.fallback_assignments <= outcome.total_tokens
    assert sum(outcome.breakdown.values()) == outcome.query_rounds
