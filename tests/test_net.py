"""Tests for the network serving tier: frames, shard servers, gateway, client.

The acceptance-critical property lives in
``test_cluster_report_signature_parity_local_vs_tcp``: the same seeded
workload driven through ``transport="local"`` and ``transport="tcp"``
coordinators yields byte-identical :meth:`ClusterReport.signature` values.
Around it: the frame protocol's framing/limits, the shard server process
lifecycle, deadline semantics (expired work is requeued, never lost), the
coordinator-shaped :class:`ClusterClient` surface, and the deprecation /
close-idempotency satellites.
"""

import socket
import threading
import warnings

import pytest

from repro.cluster import ClusterCoordinator, OpenLoopLoadGenerator
from repro.cluster.worker import ShardWorker
from repro.graphs.generators import random_regular_expander
from repro.metrics import MetricsRegistry
from repro.net import (
    ClusterClient,
    ClusterGateway,
    DeadlineExpired,
    GatewayError,
    MAX_FRAME_BYTES,
    NetInstruments,
    recv_frame,
    send_frame,
)
from repro.net.shard_server import ShardServerConfig, start_shard_server
from repro.planner import ExecutionPlan
from repro.wire import Ping, Pong, ShardStatsRequest, WireDecodeError
from repro.workloads import permutation_workload

PLAN = ExecutionPlan(backend="deterministic", max_workers=2)


@pytest.fixture(scope="module")
def graphs():
    return [random_regular_expander(48, degree=6, seed=seed) for seed in range(2)]


# -- frames ------------------------------------------------------------------------


def test_blocking_frames_round_trip_with_instrument_counts():
    registry = MetricsRegistry()
    instruments = NetInstruments(registry, role="client")
    left, right = socket.socketpair()
    try:
        send_frame(left, Ping(), instruments=instruments)
        assert isinstance(recv_frame(right, instruments=instruments), Ping)
        sent = registry.get("repro_net_frames_total").labels(role="client", direction="sent")
        frames = registry.get("repro_net_frames_total")
        received = frames.labels(role="client", direction="received")
        assert sent.value == 1 and received.value == 1
        bytes_sent = registry.get("repro_net_bytes_total").labels(role="client", direction="sent")
        assert bytes_sent.value > 4  # length prefix + codec byte + body
    finally:
        left.close()
        right.close()


def test_clean_eof_reads_as_none():
    left, right = socket.socketpair()
    left.close()
    try:
        assert recv_frame(right) is None
    finally:
        right.close()


def test_oversize_frame_header_is_rejected():
    left, right = socket.socketpair()
    try:
        left.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(WireDecodeError):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_zero_length_frame_is_rejected():
    left, right = socket.socketpair()
    try:
        left.sendall((0).to_bytes(4, "big"))
        with pytest.raises(WireDecodeError):
            recv_frame(right)
    finally:
        left.close()
        right.close()


# -- shard server processes --------------------------------------------------------


def test_shard_server_config_validation(tmp_path):
    with pytest.raises(ValueError, match="unknown family"):
        ShardServerConfig(shard_id="s", family="carrier-pigeon")
    with pytest.raises(ValueError, match="socket_path"):
        ShardServerConfig(shard_id="s", family="unix")
    with pytest.raises(ValueError, match="process pools"):
        ShardServerConfig(
            shard_id="s",
            family="unix",
            socket_path=str(tmp_path / "s.sock"),
            default_plan=ExecutionPlan(backend="deterministic", parallelism="processes"),
        )


def test_shard_server_process_lifecycle(tmp_path, graphs):
    config = ShardServerConfig(
        shard_id="shard-0",
        socket_path=str(tmp_path / "shard-0.sock"),
        cache_capacity=4,
        default_plan=PLAN,
    )
    shard = start_shard_server(config, metrics=MetricsRegistry())
    try:
        assert shard.ping()
        # Build the slice the way the coordinator would and serve it remotely.
        with ClusterCoordinator(
            shard_count=1, default_plan=PLAN, metrics=MetricsRegistry()
        ) as local:
            workload = permutation_workload(graphs[0], shift=1)
            for request in workload.requests[:4]:
                local.submit(graphs[0], [request], workload=workload.name)
            [(_, items)] = local.drain_slices().items()
        report = shard.process(items)
        assert report.query_count == 4
        assert report.all_delivered
        row = shard.as_row()
        assert row["shard"] == "shard-0"
        assert row["queries"] == 4
    finally:
        shard.close()
        shard.close()  # idempotent
    assert not shard.child.is_alive()
    assert not (tmp_path / "shard-0.sock").exists()


def test_tcp_transport_coordinator_round_trip(graphs):
    with ClusterCoordinator(
        shard_count=2,
        cache_capacity=4,
        default_plan=PLAN,
        metrics=MetricsRegistry(),
        transport="tcp",
    ) as coordinator:
        workload = permutation_workload(graphs[0], shift=1)
        for request in workload.requests[:6]:
            coordinator.submit(graphs[0], [request], workload=workload.name)
        report = coordinator.dispatch()
        assert report.query_count == 6
        assert report.all_delivered
        rows = coordinator.shard_rows()
        assert sum(row["queries"] for row in rows) == 6


def test_unknown_transport_is_rejected():
    with pytest.raises(ValueError, match="transport"):
        ClusterCoordinator(shard_count=1, transport="avian")


def test_cluster_report_signature_parity_local_vs_tcp(graphs):
    """The acceptance bar: identical seeded workloads, byte-identical signatures."""

    def run(transport):
        with ClusterCoordinator(
            shard_count=2,
            cache_capacity=4,
            default_plan=PLAN,
            metrics=MetricsRegistry(),
            transport=transport,
        ) as coordinator:
            generator = OpenLoopLoadGenerator(
                graphs, rate=60.0, duration=0.3, dispatch_interval=0.1, seed=3
            )
            slo = generator.run(coordinator)
        return slo

    local = run("local")
    tcp = run("tcp")
    assert local.completed == tcp.completed > 0
    local_signatures = [report.signature() for report in local.cluster_reports]
    tcp_signatures = [report.signature() for report in tcp.cluster_reports]
    assert local_signatures == tcp_signatures
    # The loadgen's round-trip accounting is populated for both transports.
    assert len(tcp.round_trip_seconds) == len(tcp.cluster_reports)
    assert all(overhead >= 0 for overhead in tcp.transport_overhead_seconds)
    assert tcp.summary()["rtt_p99_seconds"] >= tcp.summary()["rtt_p50_seconds"] >= 0


# -- gateway and client ------------------------------------------------------------


@pytest.fixture()
def gateway(tmp_path):
    coordinator = ClusterCoordinator(
        shard_count=2, cache_capacity=4, default_plan=PLAN, metrics=MetricsRegistry()
    )
    with coordinator, ClusterGateway(
        coordinator, socket_path=str(tmp_path / "gateway.sock")
    ) as gate:
        yield gate


def test_gateway_serves_the_coordinator_surface(gateway, graphs):
    with ClusterClient(gateway.address, metrics=MetricsRegistry()) as client:
        assert client.ping()
        assert client.shard_count == 2
        workload = permutation_workload(graphs[0], shift=1)
        for request in workload.requests[:5]:
            reply = client.submit(graphs[0], [request], workload=workload.name)
            assert reply.accepted
        report = client.dispatch()
        assert report.query_count == 5
        assert report.all_delivered
        assert client.admission_totals().accepted == 5
        assert all(depth == 0 for depth in client.queue_depths().values())


def test_gateway_matches_in_process_dispatch(gateway, graphs):
    # The same submissions against a twin in-process coordinator produce the
    # same report signature — the gateway adds transport, not behaviour.
    workload = permutation_workload(graphs[1], shift=2)
    with ClusterCoordinator(
        shard_count=2, cache_capacity=4, default_plan=PLAN, metrics=MetricsRegistry()
    ) as twin, ClusterClient(gateway.address, metrics=MetricsRegistry()) as client:
        for request in workload.requests[:6]:
            client.submit(graphs[1], [request], workload=workload.name)
            twin.submit(graphs[1], [request], workload=workload.name)
        assert client.dispatch().signature() == twin.dispatch().signature()


def test_submit_deadline_zero_is_refused(gateway, graphs):
    with ClusterClient(gateway.address, metrics=MetricsRegistry()) as client:
        with pytest.raises(DeadlineExpired):
            client.submit(
                graphs[0],
                permutation_workload(graphs[0], shift=1).requests[:1],
                workload="permutation",
                deadline=0.0,
            )


def test_dispatch_deadline_requeues_instead_of_losing_work(gateway, graphs):
    registry = MetricsRegistry()
    with ClusterClient(gateway.address, metrics=registry) as client:
        workload = permutation_workload(graphs[0], shift=1)
        client.submit(graphs[0], workload.requests[:3], workload=workload.name)
        report = client.dispatch(deadline=0.0)
        # Nothing served, nothing lost: the slice went back to its queue.
        assert report.query_count == 0
        assert client.last_expired
        assert sum(client.queue_depths().values()) == 1
        expirations = registry.get("repro_net_deadline_expirations_total")
        assert expirations.labels(role="client", phase="dispatch").value >= 1
        # A deadline-free redispatch then serves the requeued work.
        report = client.dispatch()
        assert report.query_count == 1
        assert report.all_delivered
        assert not client.last_expired


def test_unsupported_message_yields_gateway_error(gateway):
    with ClusterClient(gateway.address, metrics=MetricsRegistry()) as client:
        with pytest.raises(GatewayError, match="unsupported"):
            client._request(ShardStatsRequest())
        # The connection survives an application-level error.
        assert client.ping()


def test_loadgen_runs_against_the_client(gateway, graphs):
    generator = OpenLoopLoadGenerator(
        graphs, rate=50.0, duration=0.25, dispatch_interval=0.1, seed=7
    )
    with ClusterClient(gateway.address, metrics=MetricsRegistry()) as client:
        slo = generator.run(client)
    assert slo.completed == slo.offered - slo.rejected - slo.shed
    assert slo.completed > 0
    assert len(slo.round_trip_seconds) == len(slo.cluster_reports)


def test_gateway_unix_socket_removed_on_close(tmp_path):
    path = tmp_path / "gone.sock"
    coordinator = ClusterCoordinator(shard_count=1, default_plan=PLAN, metrics=MetricsRegistry())
    with coordinator:
        gate = ClusterGateway(coordinator, socket_path=str(path))
        assert path.exists()
        gate.close()
        gate.close()  # idempotent
    assert not path.exists()


def test_net_metric_families_render(gateway, graphs):
    with ClusterClient(gateway.address, metrics=MetricsRegistry()) as client:
        client.submit(graphs[0], permutation_workload(graphs[0], shift=1).requests[:2])
        client.dispatch()
    text = gateway.coordinator.metrics.render_text()
    for family in (
        "repro_net_frames_total",
        "repro_net_bytes_total",
        "repro_net_connections",
    ):
        assert family in text


# -- fingerprint negotiation and cross-connection coalescing -----------------------


def _gateway_counter(coordinator, name):
    family = coordinator.metrics.get(name)
    return family.labels(role="gateway").value if family is not None else 0


def test_two_clients_share_one_graph_upload(gateway, graphs):
    """One fingerprint, two connections, exactly one full payload on the wire."""
    coordinator = gateway.coordinator
    workload = permutation_workload(graphs[0], shift=1)
    with ClusterClient(gateway.address, metrics=MetricsRegistry()) as first:
        # First sight: the optimistic fingerprint-only submit misses, one
        # need-graph round trip buys the payload.
        first.submit(graphs[0], workload.requests[:1], workload=workload.name)
        first.submit(graphs[0], workload.requests[1:2], workload=workload.name)
        with ClusterClient(gateway.address, metrics=MetricsRegistry()) as second:
            second.submit(graphs[0], workload.requests[2:3], workload=workload.name)
    assert _gateway_counter(coordinator, "repro_net_graph_uploads_total") == 1
    assert _gateway_counter(coordinator, "repro_net_need_graph_total") == 1
    assert _gateway_counter(coordinator, "repro_net_payloads_deduped_total") == 2


def test_negotiation_cache_eviction_forces_reupload(tmp_path, graphs):
    coordinator = ClusterCoordinator(
        shard_count=2, cache_capacity=4, default_plan=PLAN, metrics=MetricsRegistry()
    )
    with coordinator, ClusterGateway(
        coordinator, socket_path=str(tmp_path / "small.sock"), graph_cache_size=1
    ) as gate:
        with ClusterClient(gate.address, metrics=MetricsRegistry()) as client:
            w0 = permutation_workload(graphs[0], shift=1)
            w1 = permutation_workload(graphs[1], shift=1)
            client.submit(graphs[0], w0.requests[:1], workload=w0.name)  # uploads g0
            client.submit(graphs[1], w1.requests[:1], workload=w1.name)  # evicts g0
            client.submit(graphs[0], w0.requests[1:2], workload=w0.name)  # re-upload
        assert _gateway_counter(coordinator, "repro_net_need_graph_total") == 3
        assert _gateway_counter(coordinator, "repro_net_graph_uploads_total") == 3


def test_membership_change_invalidates_negotiation_cache(tmp_path, graphs):
    coordinator = ClusterCoordinator(
        shard_count=2, cache_capacity=4, default_plan=PLAN, metrics=MetricsRegistry()
    )
    with coordinator, ClusterGateway(
        coordinator, socket_path=str(tmp_path / "member.sock")
    ) as gate:
        workload = permutation_workload(graphs[0], shift=1)
        with ClusterClient(gate.address, metrics=MetricsRegistry()) as client:
            client.submit(graphs[0], workload.requests[:1], workload=workload.name)
            client.submit(graphs[0], workload.requests[1:2], workload=workload.name)
            assert _gateway_counter(coordinator, "repro_net_graph_uploads_total") == 1
            coordinator.add_shard()
            # Stale negotiated entries must not survive the ring change.
            client.submit(graphs[0], workload.requests[2:3], workload=workload.name)
        assert _gateway_counter(coordinator, "repro_net_need_graph_total") == 2
        assert _gateway_counter(coordinator, "repro_net_graph_uploads_total") == 2


def test_coalesced_submits_match_sequential_signature(tmp_path, graphs):
    """K concurrent submitters coalesce into micro-batches; the merged report
    signature is byte-identical to the same submissions made sequentially."""
    workload = permutation_workload(graphs[0], shift=1)
    requests = workload.requests[:12]

    def run(concurrency: int, tag: str):
        coordinator = ClusterCoordinator(
            shard_count=2, cache_capacity=4, default_plan=PLAN, metrics=MetricsRegistry()
        )
        with coordinator, ClusterGateway(
            coordinator, socket_path=str(tmp_path / f"{tag}.sock"), max_delay_ms=25.0
        ) as gate:
            if concurrency > 1:
                def submit_chunk(chunk):
                    with ClusterClient(gate.address, metrics=MetricsRegistry()) as client:
                        for request in chunk:
                            assert client.submit(
                                graphs[0], [request], workload=workload.name
                            ).accepted
                threads = [
                    threading.Thread(target=submit_chunk, args=(requests[i::concurrency],))
                    for i in range(concurrency)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            else:
                with ClusterClient(gate.address, metrics=MetricsRegistry()) as client:
                    for request in requests:
                        assert client.submit(
                            graphs[0], [request], workload=workload.name
                        ).accepted
            with ClusterClient(gate.address, metrics=MetricsRegistry()) as client:
                report = client.dispatch()
            coalesced = _gateway_counter(coordinator, "repro_net_coalesced_batches_total")
        return report, coalesced

    concurrent_report, coalesced = run(4, "coalesced")
    sequential_report, _ = run(1, "sequential")
    assert concurrent_report.query_count == sequential_report.query_count == len(requests)
    assert concurrent_report.signature() == sequential_report.signature()
    # With four connections racing, at least one window held >1 submit.
    assert coalesced >= 1


def test_remote_shard_ships_each_graph_once(tmp_path, graphs):
    """The coordinator→shard path dedups graph payloads across slices."""
    registry = MetricsRegistry()
    config = ShardServerConfig(
        shard_id="shard-0",
        socket_path=str(tmp_path / "dedup.sock"),
        cache_capacity=4,
        default_plan=PLAN,
    )
    shard = start_shard_server(config, metrics=registry)
    try:
        with ClusterCoordinator(
            shard_count=1, default_plan=PLAN, metrics=MetricsRegistry()
        ) as local:
            workload = permutation_workload(graphs[0], shift=1)
            slices = []
            for start in (0, 2):
                for request in workload.requests[start : start + 2]:
                    local.submit(graphs[0], [request], workload=workload.name)
                [(_, items)] = local.drain_slices().items()
                slices.append(items)
        first = shard.process(slices[0])
        second = shard.process(slices[1])
        assert first.all_delivered and second.all_delivered
        uploads = registry.get("repro_net_graph_uploads_total")
        deduped = registry.get("repro_net_payloads_deduped_total")
        # Slice one ships the graph once (two queries, one table entry);
        # slice two references the acked fingerprint and ships nothing.
        assert uploads.labels(role="coordinator").value == 1
        assert deduped.labels(role="coordinator").value == 3
    finally:
        shard.close()


# -- deprecation shims and lifecycle satellites ------------------------------------


def test_legacy_parallelism_kwargs_are_gone():
    # The constructor pass-through and the property shims are both gone now;
    # the deprecation cycle announced in the previous release is complete.
    with pytest.raises(TypeError):
        ClusterCoordinator(
            shard_count=1,
            shard_parallelism="threads",
            shard_max_workers=2,
            metrics=MetricsRegistry(),
        )
    with ClusterCoordinator(shard_count=1, default_plan=PLAN, metrics=MetricsRegistry()) as coord:
        with pytest.raises(AttributeError):
            coord.shard_parallelism
        with pytest.raises(AttributeError):
            coord.shard_max_workers


def test_worker_shim_properties_are_gone():
    worker = ShardWorker("w0", default_plan=PLAN, metrics=MetricsRegistry())
    try:
        with pytest.raises(AttributeError):
            worker.shard_parallelism
        with pytest.raises(AttributeError):
            worker.shard_max_workers
    finally:
        worker.close()


def test_plain_construction_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        with ClusterCoordinator(shard_count=1, default_plan=PLAN, metrics=MetricsRegistry()):
            pass


def test_worker_and_coordinator_close_are_idempotent():
    worker = ShardWorker("w0", default_plan=PLAN, metrics=MetricsRegistry())
    worker.close()
    worker.close()
    coordinator = ClusterCoordinator(shard_count=2, default_plan=PLAN, metrics=MetricsRegistry())
    coordinator.close()
    coordinator.close()
