"""Tests for the hierarchical decomposition (Property 3.1, Theorem 3.2, Appendix D)."""

import networkx as nx
import pytest

from repro.graphs.conductance import spectral_gap
from repro.hierarchy.best import best_counts_per_part, build_best_index, locate_best_rank
from repro.hierarchy.builder import (
    HierarchyParameters,
    build_hierarchy,
    embed_virtual_expander,
)


def test_build_hierarchy_rejects_disconnected_graph():
    graph = nx.Graph()
    graph.add_edges_from([(0, 1), (2, 3)])
    with pytest.raises(ValueError):
        build_hierarchy(graph)


def test_hierarchy_levels_bounded_by_one_over_epsilon(hierarchy):
    # O(1/epsilon) levels; with epsilon = 0.5 a 96-vertex graph needs <= 4.
    assert hierarchy.levels() <= 4


def test_hierarchy_parts_partition_each_internal_node(hierarchy):
    for node in hierarchy.all_nodes():
        if node.is_leaf:
            continue
        covered = set()
        for part in node.parts:
            assert not (covered & part.vertices)
            covered |= part.vertices
        assert covered == set(node.vertices)


def test_hierarchy_parts_are_id_contiguous(hierarchy):
    # Property 3.1(1): parts can be ordered so their ID ranges do not interleave.
    for node in hierarchy.all_nodes():
        if node.is_leaf:
            continue
        previous_max = None
        for part in node.parts:
            lo, hi = min(part.vertices), max(part.vertices)
            if previous_max is not None:
                assert lo > previous_max
            previous_max = hi


def test_hierarchy_part_sizes_are_balanced(hierarchy):
    # Property 3.1(1): |X*_i| within [|X|/(3k), 6|X|/k].
    for node in hierarchy.all_nodes():
        if node.is_leaf or not node.parts:
            continue
        k = len(node.parts)
        for part in node.parts:
            assert part.size >= len(node.vertices) / (3 * k) - 1
            assert part.size <= 6 * len(node.vertices) / k + 1


def test_hierarchy_virtual_graphs_are_connected_with_positive_gap(hierarchy):
    for node in hierarchy.all_nodes():
        if node.virtual_graph.number_of_nodes() <= 1:
            continue
        assert nx.is_connected(node.virtual_graph)
        if node.virtual_graph.number_of_nodes() >= 4:
            assert spectral_gap(node.virtual_graph) > 0.0


def test_hierarchy_embeddings_map_into_parent_virtual_graph(hierarchy):
    for node in hierarchy.all_nodes():
        if node.parent is None:
            continue
        parent_graph = node.parent.virtual_graph
        for (u, v), path in node.embedding_to_parent.mapping.items():
            for a, b in zip(path.vertices, path.vertices[1:]):
                assert parent_graph.has_edge(a, b)


def test_hierarchy_bad_vertices_are_matched_to_good(hierarchy):
    # Property 3.1(3): |X'_i| <= |X_i| and every bad vertex has a good mate.
    for node in hierarchy.all_nodes():
        for part in node.parts:
            assert len(part.bad_vertices) <= len(part.good_vertices)
            for vertex in part.bad_vertices:
                assert part.matching[vertex] in part.good_vertices


def test_flatten_quality_grows_monotonically_with_depth(hierarchy):
    # Corollary 3.4: the flatten quality is the product of per-level qualities,
    # so a child's flattened quality is at least its parent's.
    for node in hierarchy.all_nodes():
        for child in node.children:
            assert child.flatten_quality() >= node.flatten_quality()


def test_flatten_embedding_paths_live_in_the_original_graph(hierarchy):
    # Check on one leaf: fully flattened virtual edges are paths of G.
    leaf = hierarchy.leaves()[0]
    flattened = leaf.flatten_embedding()
    for (u, v), path in list(flattened.mapping.items())[:20]:
        for a, b in zip(path.vertices, path.vertices[1:]):
            assert hierarchy.graph.has_edge(a, b)


def test_best_vertices_cover_and_rho_best(hierarchy):
    best = hierarchy.best_vertices()
    assert best == sorted(best)
    assert len(best) >= len(hierarchy.graph) / 4
    assert hierarchy.rho_best() <= 8  # 2^{O(1/epsilon)} with epsilon = 0.5


def test_best_index_delegation_is_balanced(hierarchy):
    index = build_best_index(hierarchy)
    assert set(index.delegate_of) == set(hierarchy.graph.nodes())
    n = hierarchy.graph.number_of_nodes()
    assert index.max_delegation_load() <= -(-n // index.size)  # ceil(n / |Vbest|)


def test_locate_best_rank_is_consistent_with_global_order(hierarchy):
    root = hierarchy.root
    best = root.best_vertices()
    counts = best_counts_per_part(root)
    assert sum(counts) == len(best)
    for marker in range(0, len(best), max(1, len(best) // 10)):
        part_index, remainder = locate_best_rank(root, marker)
        child = root.parts[part_index].child
        assert child is not None
        assert child.best_vertices()[remainder] == best[marker]
    with pytest.raises(IndexError):
        locate_best_rank(root, len(best))


def test_embed_virtual_expander_produces_connected_low_degree_graph(regular_expander):
    params = HierarchyParameters(epsilon=0.5)
    block = sorted(regular_expander.nodes())[:24]
    result = embed_virtual_expander(regular_expander, block, params)
    assert nx.is_connected(result.virtual_graph)
    max_degree = max(degree for _, degree in result.virtual_graph.degree())
    assert max_degree <= result.iterations + 2
    for (u, v), path in result.embedding.mapping.items():
        assert path.source in (u, v) and path.target in (u, v)


def test_epsilon_controls_branching(regular_expander):
    wide = build_hierarchy(regular_expander, HierarchyParameters(epsilon=0.7))
    narrow = build_hierarchy(regular_expander, HierarchyParameters(epsilon=0.34))
    assert len(wide.root.parts) > len(narrow.root.parts)
