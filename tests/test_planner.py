"""Tests for the cost-model query planner (ISSUE 5).

Covers the planner determinism guarantee — same fingerprint + workload
signature + calibration state produces the byte-identical
:class:`ExecutionPlan` and ``explain()`` output — the hypothesis property
that the cost model's estimates are monotone in graph size for every
backend, and the plan-driven execution paths through the service and the
cluster tier (compat shims, plan identity in reports, adaptive
convergence, cluster-wide shared calibration).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import available_backends
from repro.cluster import ClusterCoordinator
from repro.graphs.generators import random_regular_expander
from repro.metrics import MetricsRegistry
from repro.planner import (
    PLAN_POLICIES,
    CostModel,
    ExecutionPlan,
    QueryPlanner,
    size_bucket,
    workload_signature,
)
from repro.service import RoutingService
from repro.workloads import make_workload


@pytest.fixture(scope="module")
def graph():
    return random_regular_expander(48, degree=6, seed=3)


def _calibrated_planner(**kwargs) -> QueryPlanner:
    """A planner with a reproducible, hand-fed calibration state."""
    planner = QueryPlanner(policy="adaptive", metrics=MetricsRegistry(), **kwargs)
    model = planner.cost_model
    observations = [
        ("deterministic", 0.004),
        ("deterministic", 0.0035),
        ("direct", 0.002),
        ("direct", 0.0022),
        ("randomized-gks", 0.006),
        ("randomized-gks", 0.0065),
        ("rebuild-per-query", 0.04),
        ("rebuild-per-query", 0.041),
    ]
    for backend, seconds in observations:
        model.observe_query(backend, "numpy", 48, seconds, workload="permutation")
    return planner


# -- ExecutionPlan -----------------------------------------------------------


def test_plan_identities_split_semantic_from_physical():
    base = ExecutionPlan(backend="deterministic", backend_params={"epsilon": 0.5})
    threads = ExecutionPlan(
        backend="deterministic", backend_params={"epsilon": 0.5}, parallelism="threads"
    )
    processes = ExecutionPlan(
        backend="deterministic", backend_params={"epsilon": 0.5}, parallelism="processes"
    )
    # Semantic identity ignores execution mode; full identity does not.
    assert threads.semantic_id == processes.semantic_id == base.semantic_id
    assert threads.plan_id != processes.plan_id
    # Placement annotation changes neither identity.
    placed = threads.with_shard("shard-2")
    assert placed.shard_hint == "shard-2"
    assert placed.plan_id == threads.plan_id
    assert placed.semantic_id == threads.semantic_id


def test_plan_validates_execution_mode_and_chunk():
    with pytest.raises(ValueError):
        ExecutionPlan(backend="direct", parallelism="fibers")
    with pytest.raises(ValueError):
        ExecutionPlan(backend="direct", chunk_size=0)


def test_plan_canonical_json_is_stable():
    plan = ExecutionPlan(backend="direct", backend_params={"b": 2, "a": 1})
    again = ExecutionPlan(backend="direct", backend_params={"a": 1, "b": 2})
    assert plan.canonical_json() == again.canonical_json()


# -- CostModel ---------------------------------------------------------------


def test_cost_model_prefers_workload_specific_curve():
    model = CostModel()
    model.observe_query("direct", "numpy", 64, 0.010)
    model.observe_query("direct", "numpy", 64, 0.010)
    model.observe_query("direct", "numpy", 64, 0.010)
    model.observe_query("direct", "numpy", 64, 0.001, workload="broadcast")
    model.observe_query("direct", "numpy", 64, 0.001, workload="broadcast")
    aggregate = model.estimate("direct", "numpy", 64)
    specific = model.estimate("direct", "numpy", 64, workload="broadcast")
    assert specific.scope == "workload"
    assert specific.cost < aggregate.cost
    # Unknown workload classes fall back to the aggregate curve.
    fallback = model.estimate("direct", "numpy", 64, workload="hotspot")
    assert fallback.scope == "aggregate"
    assert fallback.cost == aggregate.cost


def test_cost_model_cold_start_sample_is_provisional():
    model = CostModel(alpha=0.3)
    model.observe_query("deterministic", "numpy", 64, 1.0)  # cold outlier
    model.observe_query("deterministic", "numpy", 64, 0.01)  # steady state
    estimate = model.estimate("deterministic", "numpy", 64)
    # The second observation replaces the cold outlier outright.
    assert estimate.cost == pytest.approx(0.01)
    model.observe_query("deterministic", "numpy", 64, 0.02)
    blended = model.estimate("deterministic", "numpy", 64)
    assert blended.cost == pytest.approx(0.3 * 0.02 + 0.7 * 0.01)


def test_cost_model_version_and_signature_track_state():
    model = CostModel()
    v0, s0 = model.version, model.state_signature()
    model.observe_query("direct", "numpy", 64, 0.002)
    assert model.version == v0 + 1
    assert model.state_signature() != s0
    twin = CostModel()
    twin.observe_query("direct", "numpy", 64, 0.002)
    assert twin.state_signature() == model.state_signature()


@settings(max_examples=60, deadline=None)
@given(
    backend=st.sampled_from(
        ["deterministic", "rebuild-per-query", "randomized-gks", "direct", "unknown"]
    ),
    n_small=st.integers(min_value=8, max_value=4096),
    growth=st.integers(min_value=0, max_value=4096),
    load=st.integers(min_value=1, max_value=8),
)
def test_cost_model_priors_monotone_in_graph_size(backend, n_small, growth, load):
    """ISSUE 5: the cost model is monotone in graph size for each backend."""
    model = CostModel(epsilon=0.5)
    n_large = n_small + growth
    small = model.estimate(backend, "numpy", n_small, load=load).cost
    large = model.estimate(backend, "numpy", n_large, load=load).cost
    assert small <= large + 1e-12
    pre_small = model.estimate(backend, "numpy", n_small, phase="preprocess").cost
    pre_large = model.estimate(backend, "numpy", n_large, phase="preprocess").cost
    assert pre_small <= pre_large + 1e-12


# -- QueryPlanner determinism ------------------------------------------------


def test_same_state_produces_byte_identical_plan_and_explain():
    """ISSUE 5: fingerprint + signature + calibration state => identical output."""
    outputs = []
    for _ in range(2):  # two planners, independently but identically calibrated
        planner = _calibrated_planner()
        plan = planner.plan(
            "f" * 64, 48, request_count=48, load=1, workload="permutation"
        )
        explanation = planner.explain(
            "f" * 64, 48, request_count=48, load=1, workload="permutation"
        )
        outputs.append((plan.canonical_json(), explanation.render()))
    assert outputs[0][0] == outputs[1][0]
    assert outputs[0][1] == outputs[1][1]
    # And within one planner, the cached decision is literally the same bytes.
    planner = _calibrated_planner()
    first = planner.explain("f" * 64, 48, request_count=48, load=1, workload="permutation")
    second = planner.explain("f" * 64, 48, request_count=48, load=1, workload="permutation")
    assert first.render() == second.render()


def test_explicit_backend_pins_fixed_plan_under_any_policy():
    for policy in PLAN_POLICIES:
        planner = QueryPlanner(policy=policy, metrics=MetricsRegistry())
        plan = planner.plan("a" * 64, 64, request_count=64, backend="randomized-gks")
        assert plan.backend == "randomized-gks"
        assert plan.policy == "fixed"


def test_cost_policy_is_deterministic_and_uses_priors_cold():
    planner = QueryPlanner(policy="cost", metrics=MetricsRegistry())
    plan = planner.plan("b" * 64, 64, request_count=64, load=1)
    # With no calibration the asymptotic priors decide: the paper's
    # deterministic router has the smallest warm-query bound.
    assert plan.backend == "deterministic"
    assert plan.policy == "cost"


def test_adaptive_explores_then_converges():
    planner = QueryPlanner(policy="adaptive", metrics=MetricsRegistry())
    probed = []
    # Each round: plan, feed one observation, until exploration is done.
    for _ in range(2 * len(planner.candidates)):
        plan = planner.plan("c" * 64, 48, request_count=48, load=1, workload="permutation")
        if not plan.reason.startswith("exploring"):
            break
        probed.append(plan.backend)
        planner.record_query(
            plan, 48, {"direct": 0.001}.get(plan.backend, 0.05), workload="permutation"
        )
    assert set(probed) == set(planner.candidates)
    final = planner.plan("c" * 64, 48, request_count=48, load=1, workload="permutation")
    assert final.backend == "direct"
    assert "lowest" in final.reason


def test_plan_cache_reuses_converged_decisions_within_interval():
    planner = _calibrated_planner(replan_interval=8)
    plan = planner.plan("d" * 64, 48, request_count=48, load=1, workload="permutation")
    assert not plan.reason.startswith("exploring")
    for _ in range(3):  # fewer than replan_interval observations
        planner.record_query(plan, 48, 0.002, workload="permutation")
    again = planner.plan("d" * 64, 48, request_count=48, load=1, workload="permutation")
    assert again is plan  # cached decision object, not a recomputation
    for _ in range(8):
        planner.record_query(plan, 48, 0.002, workload="permutation")
    refreshed = planner.plan("d" * 64, 48, request_count=48, load=1, workload="permutation")
    assert refreshed is not plan


def test_plan_cache_keys_on_active_kernel():
    """Flipping the kernel must re-derive plans, not serve stale cached ones."""
    from repro.kernels import kernel

    planner = _calibrated_planner()
    numpy_plan = planner.plan("e" * 64, 48, request_count=48, load=1, workload="permutation")
    assert numpy_plan.kernel == "numpy"
    with kernel("reference"):
        reference_plan = planner.plan(
            "e" * 64, 48, request_count=48, load=1, workload="permutation"
        )
    assert reference_plan.kernel == "reference"
    # Back under the original kernel the original decision is served again.
    again = planner.plan("e" * 64, 48, request_count=48, load=1, workload="permutation")
    assert again.kernel == "numpy"


def test_workload_signature_buckets_scale():
    assert workload_signature("hotspot", 2, 64, 64) == workload_signature(
        "hotspot", 2, 100, 100
    )
    assert workload_signature("hotspot", 2, 64, 64) != workload_signature(
        "hotspot", 2, 64, 256
    )
    assert size_bucket(64) != size_bucket(256)


# -- service integration -----------------------------------------------------


def test_service_kwargs_synthesize_fixed_plans(graph):
    workload = make_workload("permutation", graph, shift=1)
    with RoutingService(epsilon=0.5, metrics=MetricsRegistry()) as service:
        service.submit(graph, workload, backend="direct")
        report = service.route_batch()
    result = report.results[0]
    assert result.plan is not None
    assert result.plan.policy == "fixed"
    assert result.plan.backend == "direct"
    assert result.plan_id and result.plan_semantic_id
    assert json.loads(report.signature())["queries"][0]["plan"] == result.plan_semantic_id


def test_service_explicit_plan_wins(graph):
    workload = make_workload("permutation", graph, shift=1)
    plan = ExecutionPlan(backend="direct", policy="fixed", reason="test pin")
    with RoutingService(epsilon=0.5, policy="adaptive", metrics=MetricsRegistry()) as service:
        service.submit(graph, workload, plan=plan)
        report = service.route_batch()
    assert report.results[0].backend == "direct"
    assert report.results[0].plan.reason == "test pin"


def test_service_adaptive_policy_converges_and_delivers(graph):
    workloads = [make_workload("permutation", graph, shift=shift) for shift in (1, 2, 3)]
    with RoutingService(epsilon=0.5, policy="adaptive", metrics=MetricsRegistry()) as service:
        for _ in range(2 * len(available_backends()) + 1):
            for workload in workloads:
                assert service.route(graph, workload).all_delivered
        explanation = service.explain(graph, workloads[0])
        assert explanation.plan.policy == "adaptive"
        assert not explanation.plan.reason.startswith("exploring")
        assert service.planner.cost_model.version > 0
        # The converged backend routes and reports through the plan.
        report_backend = service.route(graph, workloads[0]).backend
        assert report_backend == explanation.plan.backend


def test_service_mixed_modes_in_one_batch_share_signature(graph):
    """Plans may split one batch across thread and process pools."""
    workload = make_workload("permutation", graph, shift=1)
    thread_plan = ExecutionPlan(backend="deterministic", parallelism="threads")
    process_plan = ExecutionPlan(backend="deterministic", parallelism="processes")
    with RoutingService(epsilon=0.5, max_workers=2, metrics=MetricsRegistry()) as service:
        service.route(graph, workload)  # warm the artifact once
        service.submit(graph, workload, plan=thread_plan)
        service.submit(graph, workload, plan=process_plan)
        report = service.route_batch()
    assert report.query_count == 2
    assert report.all_delivered
    first, second = report.results
    # Same semantic plan: identical deterministic outcome either way.
    assert first.plan_semantic_id == second.plan_semantic_id
    assert first.outcome.query_rounds == second.outcome.query_rounds
    assert first.outcome.delivered == second.outcome.delivered


def test_service_explain_requires_planner(graph):
    workload = make_workload("permutation", graph, shift=1)
    with RoutingService(epsilon=0.5, metrics=MetricsRegistry()) as service:
        with pytest.raises(RuntimeError):
            service.explain(graph, workload)


# -- cluster integration -----------------------------------------------------


def test_cluster_default_plan_replaces_knob_plumbing(graph):
    # The legacy shard_parallelism/shard_max_workers constructor kwargs are
    # gone; one plan object shared by every shard worker is the only spelling.
    with pytest.raises(TypeError):
        ClusterCoordinator(shard_count=2, shard_parallelism="threads")
    coordinator = ClusterCoordinator(
        shard_count=2,
        default_plan=ExecutionPlan(
            backend="deterministic", parallelism="threads", max_workers=2
        ),
        metrics=MetricsRegistry(),
    )
    with coordinator:
        assert coordinator.default_plan.parallelism == "threads"
        assert coordinator.default_plan.max_workers == 2
        # The one-release property shims are gone too.
        with pytest.raises(AttributeError):
            coordinator.shard_parallelism
        with pytest.raises(AttributeError):
            coordinator.shard_max_workers
        for worker in coordinator.workers.values():
            assert worker.default_plan is coordinator.default_plan
            assert worker.service.parallelism == "threads"
            assert worker.service.max_workers == 2
        workload = make_workload("permutation", graph, shift=1)
        decision = coordinator.submit(graph, workload)
        assert decision.accepted
        report = coordinator.dispatch()
        assert report.all_delivered
        result = next(iter(report.shard_reports.values())).results[0]
        assert result.plan.shard_hint in coordinator.shard_ids


def test_cluster_default_plan_params_survive_submission(graph):
    """A configured default_plan's backend_params reach every fixed submission."""
    template = ExecutionPlan(
        backend="deterministic", backend_params={"epsilon": 0.4}, policy="fixed"
    )
    with ClusterCoordinator(
        shard_count=2, epsilon=0.4, default_plan=template, metrics=MetricsRegistry()
    ) as coordinator:
        workload = make_workload("permutation", graph, shift=1)
        planned = coordinator.plan(graph, workload)
        assert dict(planned.backend_params) == {"epsilon": 0.4}
        # Caller params merge over the template's for the default backend...
        merged = coordinator.plan(graph, workload, backend_params={"psi": 0.1})
        assert dict(merged.backend_params) == {"epsilon": 0.4, "psi": 0.1}
        # ...but a pinned different backend never inherits them.
        pinned = coordinator.plan(graph, workload, backend="direct")
        assert dict(pinned.backend_params) == {}
        assert coordinator.submit(graph, workload).accepted
        report = coordinator.dispatch()
        assert report.all_delivered


def test_cluster_signature_covers_plans(graph):
    def run():
        with ClusterCoordinator(shard_count=2, metrics=MetricsRegistry()) as coordinator:
            workload = make_workload("permutation", graph, shift=1)
            coordinator.submit(graph, workload)
            coordinator.submit(graph, workload, backend="direct")
            return coordinator.dispatch().signature()

    first, second = run(), run()
    assert first == second
    assert any(shard["plans"] for shard in first.values())


def test_cluster_adaptive_policy_shares_one_cost_model(graph):
    with ClusterCoordinator(
        shard_count=2, policy="adaptive", metrics=MetricsRegistry()
    ) as coordinator:
        workload = make_workload("permutation", graph, shift=1)
        for _ in range(2 * len(available_backends()) + 1):
            coordinator.submit(graph, workload)
            report = coordinator.dispatch()
            assert report.all_delivered
        # Every shard's service feeds the same model the coordinator plans by.
        model = coordinator.planner.cost_model
        for worker in coordinator.workers.values():
            assert worker.service.planner is coordinator.planner
        assert model.version > 0
        explanation = coordinator.explain(graph, workload)
        assert not explanation.plan.reason.startswith("exploring")
        assert len(report.plan_counts) >= 1
        assert sum(report.backend_counts.values()) == report.query_count
