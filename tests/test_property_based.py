"""Property-based tests (hypothesis) for the core data structures and invariants."""

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest.scheduler import ScheduledToken, schedule_tokens_along_paths
from repro.core.cost import CostLedger
from repro.core.dispersion import DispersionState
from repro.cutmatching.potential import WalkState, walk_matrix
from repro.embedding.paths import Path, PathCollection
from repro.graphs.cluster import build_cluster_graph, natural_fractional_matching
from repro.sorting.expander_sort import SortItem, expander_sort, is_globally_sorted
from repro.sorting.networks import apply_network, batcher_odd_even_network

settings.register_profile(
    "repro", deadline=None, max_examples=40, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro")


# -- sorting networks: the 0-1 principle extended to arbitrary integers ------------------


@given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=24))
def test_batcher_network_sorts_arbitrary_integer_lists(values):
    network = batcher_odd_even_network(len(values))
    assert apply_network(network, values) == sorted(values)


# -- expander sort: sortedness, conservation, load bound ----------------------------------


@given(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=1, max_value=4),
    st.data(),
)
def test_expander_sort_invariants(vertex_count, load, data):
    vertices = list(range(vertex_count))
    items_at = {}
    for vertex in vertices:
        count = data.draw(st.integers(min_value=0, max_value=load))
        items_at[vertex] = [
            SortItem(
                key=data.draw(st.integers(min_value=0, max_value=20)),
                tag=f"{vertex}-{slot}",
                value=(vertex, slot),
            )
            for slot in range(count)
        ]
    total_before = sum(len(items) for items in items_at.values())
    result = expander_sort(vertices, items_at, load, engine="comparator")
    total_after = sum(len(items) for items in result.placement.items_at.values())
    assert total_after == total_before                      # conservation
    assert is_globally_sorted(result.placement, vertices)   # sortedness
    assert result.max_load <= max(load, 1)                  # load bound


# -- scheduler: Fact 2.2's bound holds for arbitrary path collections ------------------------


@given(st.lists(st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=6), min_size=1, max_size=12))
def test_scheduler_round_bound(paths):
    tokens = []
    for index, raw in enumerate(paths):
        deduplicated = [raw[0]]
        for vertex in raw[1:]:
            if vertex != deduplicated[-1]:
                deduplicated.append(vertex)
        tokens.append(ScheduledToken(token_id=index, path=tuple(deduplicated)))
    result = schedule_tokens_along_paths(tokens)
    assert result.rounds <= max(1, result.congestion * result.dilation)
    assert result.rounds <= result.quality_squared_bound or result.quality == 0


# -- path collections: quality is congestion + dilation and union is monotone ----------------


@given(st.lists(st.lists(st.integers(min_value=0, max_value=8), min_size=2, max_size=5), min_size=1, max_size=8))
def test_path_collection_union_quality_monotone(raw_paths):
    paths = []
    for raw in raw_paths:
        cleaned = [raw[0]]
        for vertex in raw[1:]:
            if vertex != cleaned[-1]:
                cleaned.append(vertex)
        if len(cleaned) >= 2:
            paths.append(Path(tuple(cleaned)))
    if not paths:
        return
    half = len(paths) // 2 or 1
    a = PathCollection(paths[:half])
    b = PathCollection(paths[half:])
    union = PathCollection.union([a, b])
    assert union.quality >= max(a.quality, b.quality)
    assert union.congestion <= a.congestion + b.congestion
    assert union.quality == union.congestion + union.dilation


# -- walk matrices: stochasticity and potential decay ------------------------------------------


@given(
    st.integers(min_value=2, max_value=8),
    st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=0, max_size=6),
)
def test_walk_matrix_is_row_stochastic_and_potential_never_increases(size, raw_pairs):
    state = WalkState(size)
    previous = state.potential()
    matching = {}
    degree = {}
    for a, b in raw_pairs:
        a, b = a % size, b % size
        if a == b:
            continue
        key = (min(a, b), max(a, b))
        if degree.get(a, 0) + 0.5 > 1 or degree.get(b, 0) + 0.5 > 1 or key in matching:
            continue
        matching[key] = 0.5
        degree[a] = degree.get(a, 0) + 0.5
        degree[b] = degree.get(b, 0) + 0.5
    matrix = walk_matrix(size, matching)
    assert abs(matrix.sum() - size) < 1e-9
    current = state.apply(matching)
    assert current <= previous + 1e-9


# -- dispersion state: conservation under arbitrary pop/push sequences ---------------------------


@given(
    st.integers(min_value=1, max_value=5),
    st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 3)), max_size=20),
)
def test_dispersion_state_conserves_items(parts, moves):
    state = DispersionState(parts)
    total = 0
    for index in range(parts * 3):
        state.add(index % parts, "m", f"item-{index}")
        total += 1
    for origin, target, amount in moves:
        origin, target = origin % parts, target % parts
        taken = state.pop_front(origin, "m", amount)
        state.push_back(target, "m", taken)
    assert sum(state.count(part, "m") for part in range(parts)) == total


# -- cluster graphs: fractional matchings always have degree <= 1 -------------------------------


@given(st.lists(st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=15))
def test_natural_fractional_matching_degree_bound(pairs):
    graph = nx.cycle_graph(12)
    cluster = build_cluster_graph(graph, [range(0, 4), range(4, 8), range(8, 12)])
    fractional = natural_fractional_matching(cluster, pairs, normalizer=2.0)
    degree = {}
    for (a, b), value in fractional.items():
        assert value >= 0
        degree[a] = degree.get(a, 0) + value
        degree[b] = degree.get(b, 0) + value
    assert all(value <= 1 + 1e-9 for value in degree.values())


# -- cost ledger: totals equal the sum of phases ------------------------------------------------


@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 100)), max_size=20))
def test_cost_ledger_total_is_sum_of_charges(charges):
    ledger = CostLedger()
    for phase, rounds in charges:
        ledger.charge(phase, rounds)
    assert ledger.total() == sum(rounds for _, rounds in charges)
