"""Edge cases and degenerate instances across the public API."""

import networkx as nx
import pytest

from repro.core.cost import CostLedger
from repro.core.router import ExpanderRouter
from repro.core.tokens import RoutingRequest
from repro.graphs.cluster import build_cluster_graph
from repro.graphs.conductance import estimate_conductance
from repro.graphs.generators import circulant_expander
from repro.hierarchy.builder import HierarchyParameters, build_hierarchy
from repro.sorting.expander_sort import SortItem, expander_sort, is_globally_sorted
from repro.sorting.networks import batcher_odd_even_network, is_sorting_network


def test_router_on_a_complete_graph():
    graph = nx.complete_graph(12)
    router = ExpanderRouter(graph, epsilon=0.5)
    router.preprocess()
    outcome = router.route(
        [RoutingRequest(source=v, destination=(v + 5) % 12) for v in graph.nodes()]
    )
    assert outcome.all_delivered


def test_router_with_empty_request_list(preprocessed_router):
    outcome = preprocessed_router.route([])
    assert outcome.total_tokens == 0
    assert outcome.all_delivered
    assert outcome.query_rounds >= 0


def test_router_with_a_single_request(preprocessed_router):
    graph = preprocessed_router.graph
    nodes = sorted(graph.nodes())
    outcome = preprocessed_router.route(
        [RoutingRequest(source=nodes[0], destination=nodes[-1], payload="only one")]
    )
    assert outcome.all_delivered
    assert outcome.tokens[0].payload == "only one"


def test_router_on_a_tiny_cycle():
    graph = nx.cycle_graph(6)
    router = ExpanderRouter(graph, epsilon=0.5)
    router.preprocess()
    outcome = router.route(
        [RoutingRequest(source=v, destination=(v + 3) % 6) for v in graph.nodes()]
    )
    assert outcome.all_delivered


def test_hierarchy_of_a_tiny_graph_is_a_single_leaf():
    graph = nx.complete_graph(5)
    decomposition = build_hierarchy(graph, HierarchyParameters(epsilon=0.5))
    assert decomposition.root.is_leaf
    assert decomposition.levels() == 1
    assert decomposition.best_vertices() == sorted(graph.nodes())


def test_hierarchy_parameters_never_request_undersized_parts():
    params = HierarchyParameters(epsilon=0.9, min_part_size=4)
    assert params.parts_for(total_vertices=1000, node_size=7) <= 1
    assert params.parts_for(total_vertices=1000, node_size=40) <= 10


def test_cluster_graph_with_singleton_parts():
    graph = nx.path_graph(4)
    cluster = build_cluster_graph(graph, [[0], [1], [2], [3]])
    assert cluster.size == 4
    assert cluster.crossing_edges(0, 1) == 1
    assert cluster.crossing_edges(0, 3) == 0


def test_expander_sort_single_vertex_and_single_token():
    result = expander_sort([7], {7: [SortItem(key=3, tag="only")]}, load=1)
    assert [item.key for item in result.placement.items_at[7]] == [3]
    assert is_globally_sorted(result.placement, [7])


def test_sorting_network_of_size_one_and_two():
    assert batcher_odd_even_network(1).depth == 0 or is_sorting_network(batcher_odd_even_network(1))
    assert is_sorting_network(batcher_odd_even_network(2))


def test_estimate_conductance_on_degenerate_graphs():
    single = nx.Graph()
    single.add_node(0)
    assert estimate_conductance(single) == float("inf")
    pair = nx.Graph()
    pair.add_edge(0, 1)
    assert estimate_conductance(pair) == pytest.approx(1.0)


def test_cost_ledger_empty_prefix_totals():
    ledger = CostLedger()
    assert ledger.total() == 0
    assert ledger.total("anything") == 0
    assert ledger.breakdown() == {}


def test_repeated_preprocessing_is_idempotent_in_structure():
    graph = circulant_expander(48)
    router = ExpanderRouter(graph, epsilon=0.5)
    first = router.preprocess()
    second = router.preprocess()
    assert second.hierarchy_levels == first.hierarchy_levels
    assert second.node_count == first.node_count
    outcome = router.route(
        [RoutingRequest(source=v, destination=(v + 1) % 48) for v in graph.nodes()]
    )
    assert outcome.all_delivered
