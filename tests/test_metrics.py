"""Tests for the metrics subsystem: primitives, registry, exposition, wiring."""

import math
import threading

import pytest

from repro.metrics import (
    MetricsRegistry,
    default_registry,
    quantile,
    set_default_registry,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


# -- counters and gauges ----------------------------------------------------------


def test_counter_increments_and_rejects_negative(registry):
    counter = registry.counter("jobs_total", "Jobs.")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways(registry):
    gauge = registry.gauge("depth", "Queue depth.")
    gauge.set(10)
    gauge.dec(3)
    gauge.inc(1)
    assert gauge.value == 8.0


def test_labeled_family_fans_out_and_validates(registry):
    family = registry.counter("hits_total", "Hits.", labels=("shard",))
    family.labels(shard="a").inc()
    family.labels(shard="a").inc()
    family.labels(shard="b").inc(5)
    assert family.labels(shard="a").value == 2
    assert family.labels(shard="b").value == 5
    with pytest.raises(ValueError):
        family.labels(wrong="a")
    with pytest.raises(ValueError):
        family.inc()  # labeled family cannot be used unlabeled


def test_registry_is_idempotent_but_rejects_kind_mismatch(registry):
    first = registry.counter("x_total", "X.")
    again = registry.counter("x_total", "X.")
    assert first is again
    with pytest.raises(ValueError):
        registry.gauge("x_total", "X as gauge.")
    with pytest.raises(ValueError):
        registry.counter("x_total", "X.", labels=("other",))


# -- histograms -------------------------------------------------------------------


def test_histogram_counts_sum_and_extremes(registry):
    histogram = registry.histogram("lat", "Latency.", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0):
        histogram.observe(value)
    summary = histogram.summary()
    assert summary["count"] == 4
    assert summary["sum"] == pytest.approx(6.05)
    assert summary["min"] == pytest.approx(0.05)
    assert summary["max"] == pytest.approx(5.0)


def test_histogram_quantiles_land_in_the_right_bucket(registry):
    histogram = registry.histogram("lat", "Latency.", buckets=(1.0, 2.0, 4.0, 8.0))
    for _ in range(90):
        histogram.observe(0.5)
    for _ in range(10):
        histogram.observe(5.0)
    # p50 is inside the first bucket, p99 inside the (4, 8] bucket.
    assert 0.0 < histogram.quantile(0.50) <= 1.0
    assert 4.0 < histogram.quantile(0.99) <= 8.0
    # Estimates are clamped to the observed range.
    assert histogram.quantile(0.0) >= 0.5
    assert histogram.quantile(1.0) <= 5.0


def test_histogram_overflow_bucket_reports_max(registry):
    histogram = registry.histogram("lat", "Latency.", buckets=(1.0,))
    histogram.observe(100.0)
    assert histogram.quantile(0.99) == pytest.approx(100.0)


def test_empty_histogram_is_all_zero(registry):
    histogram = registry.histogram("lat", "Latency.")
    assert histogram.quantile(0.5) == 0.0
    assert histogram.summary()["count"] == 0


def test_histogram_is_thread_safe(registry):
    histogram = registry.histogram("lat", "Latency.", buckets=(0.5, 1.0))
    counter = registry.counter("n_total", "N.")

    def work():
        for _ in range(500):
            histogram.observe(0.25)
            counter.inc()

    threads = [threading.Thread(target=work) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert histogram.count == 2000
    assert counter.value == 2000


# -- the list quantile helper -----------------------------------------------------


def test_quantile_interpolates_exactly():
    values = [1.0, 2.0, 3.0, 4.0]
    assert quantile(values, 0.0) == 1.0
    assert quantile(values, 1.0) == 4.0
    assert quantile(values, 0.5) == pytest.approx(2.5)
    assert quantile([], 0.5) == 0.0
    assert quantile([7.0], 0.99) == 7.0
    with pytest.raises(ValueError):
        quantile(values, 1.5)


# -- exposition -------------------------------------------------------------------


def test_render_text_exposition_format(registry):
    registry.counter("reqs_total", "Requests.", labels=("backend",)).labels(
        backend="deterministic"
    ).inc(3)
    registry.gauge("depth", "Depth.").set(2)
    registry.histogram("lat", "Latency.", buckets=(1.0,)).observe(0.5)
    text = registry.render_text()
    assert "# HELP reqs_total Requests." in text
    assert "# TYPE reqs_total counter" in text
    assert 'reqs_total{backend="deterministic"} 3' in text
    assert "depth 2" in text
    assert 'lat_bucket{le="1"} 1' in text
    assert 'lat_bucket{le="+Inf"} 1' in text
    assert "lat_count 1" in text


def test_as_dict_snapshot(registry):
    registry.counter("a_total", "A.").inc(2)
    registry.histogram("b", "B.", buckets=(1.0,)).observe(0.5)
    snapshot = registry.as_dict()
    assert snapshot["a_total"][""] == 2
    assert snapshot["b"][""]["count"] == 1


def test_default_registry_swap():
    fresh = MetricsRegistry()
    previous = set_default_registry(fresh)
    try:
        assert default_registry() is fresh
    finally:
        set_default_registry(previous)
    assert default_registry() is previous


# -- wiring through the serving stack ---------------------------------------------


def test_service_records_metrics_into_injected_registry():
    from repro.graphs.generators import circulant_expander
    from repro.service import RoutingService
    from repro.workloads import permutation_workload

    registry = MetricsRegistry()
    service = RoutingService(epsilon=0.5, metrics=registry)
    graph = circulant_expander(32)
    service.submit(graph, permutation_workload(graph))
    report = service.route_batch()
    assert report.query_count == 1

    snapshot = registry.as_dict()
    assert snapshot["repro_service_queries_total"]["backend=deterministic"] == 1
    assert snapshot["repro_service_batches_total"][""] == 1
    assert snapshot["repro_service_query_seconds"]["backend=deterministic"]["count"] == 1
    assert snapshot["repro_service_preprocess_rounds_total"]["kind=incurred"] > 0
    # The default-constructed cache inherited the same registry.
    assert snapshot["repro_cache_lookups_total"]["result=miss"] == 1
    assert snapshot["repro_cache_stores_total"][""] == 1


def test_backend_adapters_record_into_default_registry():
    from repro.backends import get_backend
    from repro.core.tokens import RoutingRequest
    from repro.graphs.generators import circulant_expander

    fresh = MetricsRegistry()
    previous = set_default_registry(fresh)
    try:
        graph = circulant_expander(16)
        backend = get_backend("direct", graph)
        backend.preprocess()
        backend.route([RoutingRequest(source=0, destination=5)])
        snapshot = fresh.as_dict()
        assert snapshot["repro_backend_route_seconds"]["backend=direct"]["count"] == 1
        assert snapshot["repro_backend_route_rounds_total"]["backend=direct"] >= 1
        assert "repro_backend_preprocess_rounds_total" in snapshot
    finally:
        set_default_registry(previous)


def test_histogram_bucket_counts_are_cumulative(registry):
    histogram = registry.histogram("lat", "Latency.", buckets=(1.0, 2.0))
    for value in (0.5, 1.5, 3.0):
        histogram.observe(value)
    rows = histogram.bucket_counts()
    assert rows == [(1.0, 1), (2.0, 2), (math.inf, 3)]


def test_histogram_reregistration_with_different_buckets_raises(registry):
    registry.histogram("lat2", "Latency.", buckets=(1.0,))
    with pytest.raises(ValueError):
        registry.histogram("lat2", "Latency.", buckets=(0.001, 0.01))
    # Same buckets (or the same default) stay idempotent.
    assert registry.histogram("lat2", "Latency.", buckets=(1.0,)) is registry.get("lat2")
    default = registry.histogram("lat3", "Latency.")
    assert registry.histogram("lat3", "Latency.") is default
