"""The shared-memory artifact plane: round-trips, lifecycle, and fallback.

``repro.service.shm`` flattens a :class:`PreprocessArtifact` into one pickle
skeleton plus out-of-band numpy buffers, publishes the pair in a
``multiprocessing.shared_memory`` segment, and reattaches it zero-copy.  The
tests here pin the three guarantees the serving tier builds on: an attached
view routes identically to the original, segments are unlinked when released
(no ``/dev/shm`` leaks), and everything degrades to the pickle/spill path
when shm is disabled or unavailable.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.core.router import ExpanderRouter
from repro.core.tokens import RoutingRequest
from repro.metrics import MetricsRegistry
from repro.planner import ExecutionPlan
from repro.service import RoutingService, leaked_segments, shm_available, shm_enabled
from repro.service.shm import (
    ShmArtifactStore,
    attach,
    flatten_artifact,
    unflatten_artifact,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)


@pytest.fixture(scope="module")
def artifact():
    graph = nx.random_regular_graph(4, 48, seed=9)
    router = ExpanderRouter(graph, epsilon=0.5)
    router.preprocess()
    return router.export_artifact(fingerprint="f" * 16)


def _workload(graph, seed):
    nodes = sorted(graph.nodes())
    rng = random.Random(seed)
    destinations = nodes[:]
    rng.shuffle(destinations)
    return [RoutingRequest(source=s, destination=d) for s, d in zip(nodes, destinations)]


def _route_facts(artifact, seed=0):
    graph = artifact.decomposition.graph
    router = ExpanderRouter.from_artifact(graph, artifact)
    outcome = router.route(_workload(graph, seed))
    return (
        outcome.delivered,
        outcome.total_tokens,
        outcome.query_rounds,
        outcome.preprocessing_rounds,
        tuple(sorted(outcome.breakdown.items())),
    )


def test_flatten_unflatten_round_trip(artifact):
    skeleton, buffers = flatten_artifact(artifact)
    clone = unflatten_artifact(skeleton, buffers)
    assert clone is not artifact
    assert clone.fingerprint == artifact.fingerprint
    assert clone.epsilon == artifact.epsilon
    assert _route_facts(clone) == _route_facts(artifact)


def test_publish_attach_round_trip(artifact):
    with ShmArtifactStore(metrics=MetricsRegistry()) as store:
        info = store.publish("f" * 16, artifact)
        assert info.nbytes > 0
        assert info.buffer_count > 0
        # Idempotent: a second publish reuses the segment.
        assert store.publish("f" * 16, artifact).name == info.name
        assert store.segment_for("f" * 16).name == info.name
        attached = attach(info.name)
        assert _route_facts(attached, seed=1) == _route_facts(artifact, seed=1)
    assert leaked_segments() == []


def test_release_unlinks_at_zero(artifact):
    store = ShmArtifactStore()
    info = store.publish("a" * 16, artifact)
    store.publish("a" * 16, artifact)  # refcount 2
    assert store.release("a" * 16) is False  # still held
    assert store.segment_for("a" * 16) is not None
    assert store.release("a" * 16) is True  # unlinked
    assert store.segment_for("a" * 16) is None
    with pytest.raises(FileNotFoundError):
        attach(info.name)
    assert leaked_segments() == []


def test_trim_protects_kept_fingerprints(artifact):
    store = ShmArtifactStore()
    for index in range(4):
        store.publish(f"{index:016d}", artifact)
    unlinked = store.trim(2, keep={"0000000000000003"})
    assert unlinked == 2
    assert store.segment_for("0000000000000003") is not None
    assert len(store) == 2
    store.close()
    assert leaked_segments() == []


def test_store_close_unlinks_everything(artifact):
    store = ShmArtifactStore()
    store.publish("b" * 16, artifact)
    store.publish("c" * 16, artifact)
    store.close()
    assert len(store) == 0
    assert leaked_segments() == []


def test_env_gate_disables_shm(monkeypatch):
    monkeypatch.setenv("REPRO_SHM", "0")
    assert shm_enabled() is False
    monkeypatch.setenv("REPRO_SHM", "1")
    assert shm_enabled() is True
    monkeypatch.delenv("REPRO_SHM")
    assert shm_enabled() is True  # default on


def test_service_falls_back_when_shm_disabled(monkeypatch):
    """A plan asking for shm transport still routes with REPRO_SHM=0."""
    monkeypatch.setenv("REPRO_SHM", "0")
    graph = nx.random_regular_graph(4, 48, seed=2)
    plan = ExecutionPlan(
        backend="deterministic", parallelism="processes", artifact_transport="shm"
    )
    metrics = MetricsRegistry()
    with RoutingService(metrics=metrics) as service:
        for seed in range(2):
            service.submit(graph, _workload(graph, seed), plan=plan)
        report = service.route_batch()
    assert report.all_delivered
    assert metrics.get("repro_shm_published_total") is None
    assert leaked_segments() == []


def test_service_shm_transport_skips_spill():
    graph = nx.random_regular_graph(4, 48, seed=4)
    plan = ExecutionPlan(
        backend="deterministic", parallelism="processes", artifact_transport="shm"
    )
    metrics = MetricsRegistry()
    with RoutingService(metrics=metrics) as service:
        for round_index in range(2):
            for seed in range(2):
                service.submit(graph, _workload(graph, seed), plan=plan)
            assert service.route_batch().all_delivered
        snapshot = metrics.as_dict()
    assert snapshot["repro_shm_published_total"][""] == 1.0
    assert snapshot["repro_service_pool_spill_skipped_total"]["reason=shm"] >= 1.0
    assert leaked_segments() == []


def test_cluster_warm_handoff_uses_shm_plane():
    """Rebalanced warm keys migrate via shm and keep serving as cache hits."""
    from repro.cluster import ClusterCoordinator
    from repro.workloads import make_workload

    graphs = [nx.random_regular_graph(4, 48, seed=s) for s in range(3)]
    metrics = MetricsRegistry()
    with ClusterCoordinator(shard_count=2, metrics=metrics) as coordinator:
        for graph in graphs:
            coordinator.submit(graph, make_workload("permutation", graph, shift=1))
        coordinator.dispatch()
        coordinator.add_shard()
        for graph in graphs:
            coordinator.submit(graph, make_workload("permutation", graph, shift=2))
        report = coordinator.dispatch()
        assert report.cache_hits == report.query_count
        assert report.preprocess_rounds_incurred == 0
        handoffs = metrics.as_dict().get("repro_cluster_warm_handoffs_total", {})
        moved = sum(handoffs.values())
        assert handoffs.get("path=shm", 0.0) == moved
    assert leaked_segments() == []
