"""E7 (Appendix F): routing and sorting are equivalent up to small overheads.

Regenerates the two overhead measurements:

* Lemma F.1: sorting via a routing oracle uses exactly one routing call per
  layer of the comparator network (O(log^2 n) with Batcher, O(log n) with AKS).
* Lemma F.2: routing via a comparison-based sorting oracle uses O(1) sorting
  calls (three in our implementation, as in the paper's recipe).
"""

import math


from repro.analysis.reporting import format_table
from repro.applications.sorting_equivalence import routing_via_sorting, sorting_via_routing

from conftest import quick_sizes

SIZES = quick_sizes([32, 64, 128])


def _routing_oracle(demands):
    delivered = {}
    for origin, pairs in demands.items():
        for destination, item in pairs:
            delivered.setdefault(destination, []).append(item)
    return delivered


def _sorting_oracle(keyed):
    vertices = sorted(keyed.keys())
    everything = sorted((pair for pairs in keyed.values() for pair in pairs), key=lambda p: p[0])
    per_vertex = max(1, -(-len(everything) // len(vertices)))
    return {
        vertex: everything[i * per_vertex: (i + 1) * per_vertex]
        for i, vertex in enumerate(vertices)
    }


def _measure(n: int) -> dict:
    items_at = {v: [((v * 7) % 23, f"item-{v}-{s}") for s in range(2)] for v in range(n)}
    sort_record = sorting_via_routing(items_at, _routing_oracle, load=2)
    flat = [key for v in range(n) for key, _ in sort_record.placement[v]]
    tokens_at = {v: [((v * 5) % n, f"token-{v}")] for v in range(n)}
    route_record = routing_via_sorting(tokens_at, _sorting_oracle, load=1)
    delivered = sum(len(items) for items in route_record.delivered.values())
    return {
        "n": n,
        "sorted_ok": flat == sorted(flat),
        "routing_calls_for_sorting": sort_record.routing_calls,
        "log2_n_squared": math.ceil(math.log2(n)) ** 2,
        "sorting_calls_for_routing": route_record.sorting_calls,
        "tokens_delivered": delivered,
    }


def test_equivalence_overheads(benchmark):
    def run():
        return [_measure(n) for n in SIZES]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[E7] routing <-> sorting equivalence overheads")
    print(format_table(rows))
    for row in rows:
        assert row["sorted_ok"]
        # Lemma F.1 with the Batcher substitute: <= O(log^2 n) routing calls.
        assert row["routing_calls_for_sorting"] <= row["log2_n_squared"]
        # Lemma F.2: a constant number of sorting calls.
        assert row["sorting_calls_for_routing"] == 3
        assert row["tokens_delivered"] == row["n"]
