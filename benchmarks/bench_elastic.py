"""E8: elasticity — a bursty scale-out/in cycle under chaos, and R=2 hot reads.

Two measurements, one JSON artifact (``bench-elastic.json``):

* **Bursty autoscale + seeded crash.**  An open-loop bursty arrival process
  drives a queue-depth autoscaler between 2 and 6 shards while a seeded
  :class:`~repro.elastic.FaultPlan` kills and rejoins a shard mid-run.  The
  headline assertions are the ISSUE acceptance bar: the scaler both grows to
  its ceiling and returns to its floor (2 → 6 → 2), and the kill/rejoin cycle
  loses **zero** batches — every admitted batch is served exactly once.
* **Hot-key replication read throughput.**  One hotspot fingerprint hammered
  through a ``transport="tcp"`` cluster (real shard server processes, so the
  replica adds a second OS process of genuine parallelism, not a second
  GIL-bound thread).  With ``replication_factor=2`` the coordinator publishes
  the hot artifact to a replica and round-robins reads across both owners;
  the bar is >= 1.5x the R=1 read throughput on the same traffic.  The
  throughput bar needs at least two CPU cores to be physically expressible
  (two server processes cannot run concurrently on one core), so on a
  single-core host the benchmark keeps the structural assertions — reads
  spread, replica warm, all hits, zero lost — and reports the ratio without
  gating on it.
"""

import json
import os
import time
from pathlib import Path

from conftest import QUICK

from repro.analysis.reporting import format_table
from repro.cluster import ClusterCoordinator, OpenLoopLoadGenerator
from repro.elastic import Autoscaler, AutoscalerConfig, FaultPlan
from repro.graphs.generators import random_regular_expander
from repro.metrics import MetricsRegistry
from repro.planner import ExecutionPlan
from repro.workloads import permutation_workload

BENCH_N = 48 if QUICK else 64
BURST_RATE = 240.0 if QUICK else 360.0
BURST_DURATION = 1.2 if QUICK else 2.0
HOT_CLIENTS = 8  # hot submissions per dispatch round
HOT_ROUNDS = 4 if QUICK else 8
PLAN = ExecutionPlan(backend="deterministic", max_workers=2)
RESULTS_PATH = Path(__file__).resolve().parent.parent / "bench-elastic.json"


def _graphs(count=3):
    return [random_regular_expander(BENCH_N, degree=6, seed=seed) for seed in range(count)]


def _bursty_chaos_row():
    graphs = _graphs()
    coordinator = ClusterCoordinator(
        shard_count=2,
        cache_capacity=8,
        default_plan=PLAN,
        metrics=MetricsRegistry(),
    )
    generator = OpenLoopLoadGenerator(
        graphs,
        rate=BURST_RATE,
        duration=BURST_DURATION,
        arrival="bursty",
        burst_factor=3.0,
        burst_period=0.4,
        burst_fraction=0.3,
        dispatch_interval=0.05,
        seed=11,
    )
    autoscaler = Autoscaler(
        coordinator,
        AutoscalerConfig(
            policy="queue-depth",
            min_shards=2,
            max_shards=6,
            scale_up_depth=2.5,
            scale_down_depth=1.0,
            evaluate_interval=0.05,
            cooldown=0.05,
            scale_step=2,
        ),
    )
    plan = FaultPlan.kill_and_rejoin(
        "shard-1", kill_at=BURST_DURATION * 0.4, rejoin_at=BURST_DURATION * 0.7
    )
    with coordinator:
        report = generator.run(coordinator, fault_plan=plan, autoscaler=autoscaler)
        final_shards = coordinator.shard_count
    peak = max((event["to_shards"] for event in report.scale_events), default=2)
    floor = min((event["to_shards"] for event in report.scale_events), default=2)
    return report, {
        "experiment": "bursty-autoscale-chaos",
        "n": BENCH_N,
        "offered": report.offered,
        "admitted": report.admitted,
        "completed": report.completed,
        "lost_batches": report.lost_batches,
        "requeued_batches": report.requeued_batches,
        "failovers": report.failovers,
        "scale_events": len(report.scale_events),
        "peak_shards": peak,
        "floor_shards": floor,
        "final_shards": final_shards,
        "p99_seconds": report.latency_quantile(0.99),
        "clean_p99_seconds": report.clean_latency_quantile(0.99),
        "failover_p99_seconds": report.failover_latency_quantile(0.99),
        "quick": QUICK,
    }


def _hotspot_row(replication_factor):
    graph = _graphs(count=1)[0]
    workload = permutation_workload(graph, shift=3)
    coordinator = ClusterCoordinator(
        shard_count=2,
        cache_capacity=4,
        default_plan=PLAN,
        metrics=MetricsRegistry(),
        transport="tcp",
        replication_factor=replication_factor,
        hot_key_threshold=1.0,
    )
    with coordinator:
        # Warm-up: build the artifact, mark the key hot, publish the replica.
        for _ in range(2):
            for _ in range(HOT_CLIENTS):
                coordinator.submit(graph, workload)
            coordinator.dispatch()
        started = time.perf_counter()
        reports = []
        for _ in range(HOT_ROUNDS):
            for _ in range(HOT_CLIENTS):
                coordinator.submit(graph, workload)
            reports.append(coordinator.dispatch())
        seconds = time.perf_counter() - started
        replicated = len(coordinator.replicated_keys())
    queries = sum(report.query_count for report in reports)
    assert all(report.all_delivered for report in reports)
    assert all(report.lost_batches == 0 for report in reports)
    served = {shard for report in reports for shard in report.shard_reports}
    return {
        "experiment": "hotspot-read-throughput",
        "n": BENCH_N,
        "replication_factor": replication_factor,
        "queries": queries,
        "seconds": seconds,
        "throughput_qps": queries / seconds,
        "serving_shards": len(served),
        "replicated_keys": replicated,
        "cache_hit_rate": sum(r.cache_hits for r in reports) / queries,
        "quick": QUICK,
    }


def test_elastic_cluster(benchmark):
    rows = []

    def sweep():
        report, chaos_row = _bursty_chaos_row()
        rows.append(chaos_row)
        for replication_factor in (1, 2):
            rows.append(_hotspot_row(replication_factor))
        return report

    report = benchmark.pedantic(sweep, rounds=1, iterations=1)
    RESULTS_PATH.write_text(json.dumps(rows, indent=2, default=str) + "\n")

    print(f"\n[E8] elastic cluster on n={BENCH_N} (quick={QUICK})")
    print(format_table(rows))
    print(f"wrote {len(rows)} rows to {RESULTS_PATH.name}")

    chaos = rows[0]
    # Zero-lost-batch failover under a bursty autoscaling run with a real
    # kill/rejoin cycle: every admitted batch served, exactly once.
    assert chaos["lost_batches"] == 0
    assert chaos["completed"] == chaos["admitted"]
    assert chaos["failovers"] >= 1
    assert report.all_delivered
    # The 2 -> 6 -> 2 elasticity cycle actually happened.
    assert chaos["peak_shards"] == 6
    assert chaos["final_shards"] == 2

    by_r = {row["replication_factor"]: row for row in rows[1:]}
    assert by_r[2]["serving_shards"] == 2  # reads really spread
    assert by_r[2]["replicated_keys"] == 1
    assert by_r[1]["cache_hit_rate"] == by_r[2]["cache_hit_rate"] == 1.0
    speedup = by_r[2]["throughput_qps"] / by_r[1]["throughput_qps"]
    cores = os.cpu_count() or 1
    print(f"hotspot read throughput R=2 vs R=1: {speedup:.2f}x on {cores} cores")
    if cores >= 2:
        assert speedup >= 1.5
