"""E9: durability — crash recovery latency and journal overhead, exactly once.

Three measurements, one JSON artifact (``bench-recovery.json``):

* **Journal overhead.**  The same seeded open-loop run with and without a
  :class:`~repro.durability.CoordinatorJournal` attached; the row records the
  throughput tax the write-ahead path charges (flush-per-append, no fsync).
* **Crash-recovery latency.**  A seeded run with a
  ``coordinator-crash`` fault mid-stream: SIGKILL semantics (abandoned
  journal, no clean shutdown), then :func:`~repro.durability.recover` replays
  the tail into a fresh coordinator.  The row records replay throughput
  (records/second), recovery wall time, and journal size — and asserts the
  exactly-once bar: zero lost batches, zero duplicate results, and a merged
  report signature byte-identical to the crash-free twin.
* **Replay scaling.**  Recovery time as the unfinished-work backlog grows
  (the journal tail recovery must re-admit), so regressions in replay cost
  show up as a curve, not an anecdote.
"""

import json
import time
from pathlib import Path

from conftest import QUICK

from repro.analysis.reporting import format_table
from repro.cluster import ClusterCoordinator, ClusterReport, OpenLoopLoadGenerator
from repro.durability import CoordinatorSupervisor, read_journal_state, recover
from repro.durability.journal import CoordinatorJournal
from repro.elastic import FaultPlan
from repro.graphs.generators import random_regular_expander
from repro.metrics import MetricsRegistry
from repro.planner import ExecutionPlan
from repro.workloads import permutation_workload

BENCH_N = 48 if QUICK else 64
RATE = 120.0 if QUICK else 200.0
DURATION = 0.4 if QUICK else 0.8
BACKLOGS = [8, 24] if QUICK else [16, 48, 96]
PLAN = ExecutionPlan(backend="deterministic", max_workers=2)
RESULTS_PATH = Path(__file__).resolve().parent.parent / "bench-recovery.json"


def _graphs(count=2):
    return [random_regular_expander(BENCH_N, degree=4, seed=seed) for seed in (1, 2)[:count]]


def _kwargs():
    return dict(
        shard_count=3,
        cache_capacity=16,
        default_plan=PLAN,
        metrics=MetricsRegistry(),
    )


def _generator(graphs):
    return OpenLoopLoadGenerator(
        graphs, rate=RATE, duration=DURATION, dispatch_interval=0.1, seed=3
    )


def _journal_overhead_rows(tmp_path):
    graphs = _graphs()
    rows = []
    for journaled in (False, True):
        kwargs = _kwargs()
        journal = (
            CoordinatorJournal(tmp_path / "overhead", metrics=kwargs["metrics"])
            if journaled
            else None
        )
        coordinator = ClusterCoordinator(**kwargs, journal=journal)
        started = time.perf_counter()
        with coordinator:
            report = _generator(graphs).run(coordinator)
        seconds = time.perf_counter() - started
        assert report.lost_batches == 0
        rows.append(
            {
                "experiment": "journal-overhead",
                "n": BENCH_N,
                "journaled": journaled,
                "completed": report.completed,
                "seconds": seconds,
                "throughput_qps": report.completed / seconds if seconds else 0.0,
                "quick": QUICK,
            }
        )
    base, taxed = rows
    taxed["overhead_pct"] = (
        100.0 * (base["throughput_qps"] - taxed["throughput_qps"]) / base["throughput_qps"]
        if base["throughput_qps"]
        else 0.0
    )
    return rows


def _crash_recovery_row(tmp_path):
    graphs = _graphs()
    kwargs = _kwargs()
    with ClusterCoordinator(**{**kwargs, "metrics": MetricsRegistry()}) as twin:
        baseline = _generator(graphs).run(twin)
    supervisor = CoordinatorSupervisor(tmp_path / "crash", kwargs)
    with supervisor:
        coordinator = supervisor.start()
        chaos = _generator(graphs).run(
            coordinator,
            fault_plan=FaultPlan.coordinator_crash(at=DURATION * 0.6),
            supervisor=supervisor,
        )
    assert chaos.lost_batches == 0
    assert chaos.duplicate_results == 0
    parity = ClusterReport.merged(chaos.cluster_reports).signature() == ClusterReport.merged(
        baseline.cluster_reports
    ).signature()
    assert parity
    [recovery] = supervisor.recoveries
    return {
        "experiment": "crash-recovery",
        "n": BENCH_N,
        "completed": chaos.completed,
        "lost_batches": chaos.lost_batches,
        "duplicate_results": chaos.duplicate_results,
        "signature_parity": parity,
        "batches_recovered": recovery.batches_recovered,
        "records_replayed": recovery.records_replayed,
        "replay_records_per_second": recovery.replay_records_per_second,
        "recovery_seconds": recovery.total_seconds,
        "journal_bytes": recovery.journal_bytes,
        "quick": QUICK,
    }


def _replay_scaling_rows(tmp_path):
    graphs = _graphs()
    rows = []
    for backlog in BACKLOGS:
        directory = tmp_path / f"backlog-{backlog}"
        kwargs = _kwargs()
        journal = CoordinatorJournal(directory, metrics=kwargs["metrics"])
        coordinator = ClusterCoordinator(**kwargs, journal=journal)
        for index in range(backlog):
            graph = graphs[index % len(graphs)]
            coordinator.submit(
                graph,
                permutation_workload(graph, shift=1 + index % 5),
                idempotency_key=f"backlog-{index}",
            )
        journal.abandon()  # SIGKILL semantics: the backlog is all unfinished
        for worker in coordinator.workers.values():
            worker.close()
        state = read_journal_state(directory)
        recovered, report = recover(directory, kwargs, attach=False)
        try:
            assert report.batches_recovered == backlog
            final = recovered.dispatch()
            assert final.query_count == backlog
            assert recovered.duplicate_results == 0
        finally:
            recovered.close()
        rows.append(
            {
                "experiment": "replay-scaling",
                "n": BENCH_N,
                "backlog": backlog,
                "records_total": state.records_total,
                "replay_seconds": report.replay_seconds,
                "recovery_seconds": report.total_seconds,
                "replay_records_per_second": report.replay_records_per_second,
                "quick": QUICK,
            }
        )
    return rows


def test_recovery(benchmark, tmp_path):
    rows = []

    def sweep():
        rows.extend(_journal_overhead_rows(tmp_path))
        rows.append(_crash_recovery_row(tmp_path))
        rows.extend(_replay_scaling_rows(tmp_path))
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    RESULTS_PATH.write_text(json.dumps(rows, indent=2, default=str) + "\n")

    print(f"\n[E9] durable exactly-once serving on n={BENCH_N} (quick={QUICK})")
    print(format_table(rows))
    print(f"wrote {len(rows)} rows to {RESULTS_PATH.name}")

    crash = next(row for row in rows if row["experiment"] == "crash-recovery")
    # The exactly-once acceptance bar, measured end to end.
    assert crash["lost_batches"] == 0
    assert crash["duplicate_results"] == 0
    assert crash["signature_parity"]
    assert crash["batches_recovered"] > 0
    scaling = [row for row in rows if row["experiment"] == "replay-scaling"]
    assert [row["backlog"] for row in scaling] == sorted(row["backlog"] for row in scaling)
    assert all(row["replay_records_per_second"] > 0 for row in scaling)
