"""E7: shard scaling — the same workload through 1, 2, and 4 cluster shards.

What scales when shards are added is *artifact cache capacity*: each shard
brings its own :class:`~repro.service.ArtifactCache`, and the consistent-hash
ring partitions the fingerprint working set across them.  The benchmark
fixes a working set of 12 distinct expanders against a per-shard cache of 4
slots: one shard can hold a third of the set and re-preprocesses the rest on
every pass, while four shards hold all of it and serve purely from cache.

The graph set is chosen deterministically so the 4-shard ring owns exactly 3
fingerprints per shard (documented, seeded seed-scan) — the benchmark
measures cache scaling, not placement luck.  One JSON row per shard count
(throughput, p99 latency, hit rate) goes to ``bench-cluster.json``, uploaded
as a CI artifact next to ``bench-backends.json``.

The headline assertion is the ISSUE's acceptance bar: four shards sustain at
least twice the single-shard batch throughput on this workload.
"""

import json
import time
from pathlib import Path

from conftest import QUICK

from repro.analysis.reporting import format_table
from repro.cluster import ClusterCoordinator, ConsistentHashRing
from repro.graphs.generators import random_regular_expander
from repro.metrics import MetricsRegistry, quantile
from repro.planner import ExecutionPlan
from repro.service import RoutingService
from repro.workloads import permutation_workload

BENCH_N = 64 if QUICK else 96
GRAPHS_PER_SHARD = 3
SHARD_COUNTS = (1, 2, 4)
CACHE_CAPACITY = 4  # per shard; one shard holds 4 of the 12 fingerprints
MEASURE_ROUNDS = 2 if QUICK else 3
RESULTS_PATH = Path(__file__).resolve().parent.parent / "bench-cluster.json"


def _balanced_graphs():
    """12 expanders whose fingerprints spread 3/3/3/3 over the 4-shard ring."""
    ring = ConsistentHashRing([f"shard-{i}" for i in range(max(SHARD_COUNTS))])
    keyer = RoutingService(epsilon=0.5, metrics=MetricsRegistry())
    quota = {shard_id: GRAPHS_PER_SHARD for shard_id in ring.shard_ids}
    graphs, seed = [], 0
    while any(quota.values()):
        graph = random_regular_expander(BENCH_N, degree=8, seed=seed)
        owner = ring.assign(keyer.fingerprint(graph))
        if quota[owner]:
            quota[owner] -= 1
            graphs.append(graph)
        seed += 1
    return graphs


def _run_rounds(coordinator, traffic, rounds):
    """Serve ``rounds`` full passes of the traffic; return (reports, seconds)."""
    started = time.perf_counter()
    reports = []
    for _ in range(rounds):
        for graph, workload in traffic:
            coordinator.submit(graph, workload)
        reports.append(coordinator.dispatch())
    return reports, time.perf_counter() - started


def test_shard_scaling(benchmark):
    graphs = _balanced_graphs()
    traffic = [(graph, permutation_workload(graph, shift=3)) for graph in graphs]
    rows = []

    def sweep():
        for shard_count in SHARD_COUNTS:
            coordinator = ClusterCoordinator(
                shard_count=shard_count,
                cache_capacity=CACHE_CAPACITY,
                default_plan=ExecutionPlan(backend="deterministic", max_workers=2),
                metrics=MetricsRegistry(),
            )
            # Warm-up pass: every artifact gets built once somewhere.
            _run_rounds(coordinator, traffic, 1)
            reports, seconds = _run_rounds(coordinator, traffic, MEASURE_ROUNDS)
            queries = sum(report.query_count for report in reports)
            latencies = [s for report in reports for s in report.query_seconds]
            assert all(report.all_delivered for report in reports)
            rows.append(
                {
                    "shards": shard_count,
                    "n": BENCH_N,
                    "graphs": len(graphs),
                    "cache_capacity": CACHE_CAPACITY,
                    "queries": queries,
                    "seconds": seconds,
                    "throughput_qps": queries / seconds,
                    "p99_seconds": quantile(latencies, 0.99),
                    "preprocess_rounds_incurred": sum(
                        report.preprocess_rounds_incurred for report in reports
                    ),
                    "cache_hit_rate": sum(report.cache_hits for report in reports) / queries,
                    "quick": QUICK,
                }
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    RESULTS_PATH.write_text(json.dumps(rows, indent=2, default=str) + "\n")

    print(
        f"\n[E7] shard scaling on n={BENCH_N}, "
        f"{len(graphs)} graphs, cache={CACHE_CAPACITY}/shard"
    )
    print(format_table(rows))
    print(f"wrote {len(rows)} rows to {RESULTS_PATH.name}")

    by_shards = {row["shards"]: row for row in rows}
    # More shards -> more aggregate cache -> fewer re-preprocesses.
    assert by_shards[4]["preprocess_rounds_incurred"] < by_shards[1]["preprocess_rounds_incurred"]
    # Four shards hold the whole working set: steady state is all cache hits.
    assert by_shards[4]["preprocess_rounds_incurred"] == 0
    assert by_shards[4]["cache_hit_rate"] == 1.0
    # The ISSUE acceptance bar: >= 2x batch throughput at 4 shards vs 1.
    speedup = by_shards[4]["throughput_qps"] / by_shards[1]["throughput_qps"]
    print(f"throughput speedup 4 shards vs 1: {speedup:.2f}x")
    assert speedup >= 2.0
