"""E6 (Corollary 1.4): deterministic k-clique enumeration in ~O(n^{1-2/k}) rounds.

Regenerates the series: for k in {3, 4} and growing n, the correctness of the
listing (vs brute force on the smaller sizes), the measured rounds, and the
fitted growth exponent, which the corollary predicts to be about 1 - 2/k
(1/3 for triangles, 1/2 for 4-cliques) up to polylog factors.
"""

import pytest

from repro.analysis.complexity import fit_power_law
from repro.analysis.reporting import format_table
from repro.applications.clique import brute_force_cliques, enumerate_cliques
from repro.graphs.generators import planted_clique_graph

from conftest import quick_sizes

SIZES = quick_sizes([48, 96, 192])


def _measure(n: int, k: int, verify: bool) -> dict:
    graph = planted_clique_graph(n, clique_size=k + 2, p=0.06, seed=3)
    listed = enumerate_cliques(graph, k=k)
    row = {
        "n": n,
        "k": k,
        "cliques": len(listed.cliques),
        "rounds": listed.rounds,
        "components": listed.components,
        "crossing_edges": listed.crossing_edges,
    }
    if verify:
        row["matches_brute_force"] = set(listed.cliques) == set(brute_force_cliques(graph, k))
    return row


@pytest.mark.parametrize("k", [3, 4])
def test_clique_enumeration_scaling(benchmark, k):
    def run():
        rows = [_measure(n, k, verify=(n <= 96)) for n in SIZES]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n[E6] {k}-clique enumeration")
    print(format_table(rows))
    for row in rows:
        if "matches_brute_force" in row:
            assert row["matches_brute_force"]
    fit = fit_power_law(SIZES, [max(row["rounds"], 1) for row in rows])
    print(f"measured round-growth exponent for k={k}: {fit.exponent:.2f} (paper: ~{1 - 2 / k:.2f} + polylog)")
    # The growth must stay well below linear in n (the trivial bound).
    assert fit.exponent < 1.6
