"""E5 (Corollary 1.3): deterministic MST on expanders via expander routing.

Regenerates the series: for growing n, the MST correctness check against
Kruskal, the number of Boruvka phases (O(log n)), the number of routing
queries, and the total rounds (routing queries reuse the one-off preprocessing).
"""

import math

import networkx as nx
import pytest

from repro.analysis.reporting import format_table
from repro.applications.mst import boruvka_mst
from repro.graphs.generators import weighted_expander

from conftest import quick_sizes

SIZES = quick_sizes([64, 128, 256])


def _measure(n: int) -> dict:
    graph = weighted_expander(n, degree=8, seed=2)
    result = boruvka_mst(graph, epsilon=0.5)
    reference = nx.minimum_spanning_tree(graph).size(weight="weight")
    return {
        "n": n,
        "mst_weight_matches_kruskal": abs(result.total_weight - reference) < 1e-9,
        "phases": result.phases,
        "phase_bound_2log_n": 2 * math.ceil(math.log2(n)),
        "routing_queries": result.routing_queries,
        "query_rounds": result.rounds,
        "preprocessing_rounds": result.preprocessing_rounds,
    }


def test_mst_scaling(benchmark):
    def run():
        return [_measure(n) for n in SIZES]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[E5] deterministic MST on expanders (Boruvka over routing)")
    print(format_table(rows))
    for row in rows:
        assert row["mst_weight_matches_kruskal"]
        assert row["phases"] <= row["phase_bound_2log_n"] + 4
        assert row["routing_queries"] <= row["phases"]


@pytest.mark.parametrize("n", SIZES)
def test_mst_single_size(benchmark, n):
    row = benchmark.pedantic(_measure, args=(n,), rounds=1, iterations=1)
    assert row["mst_weight_matches_kruskal"]
