"""E8 (Lemma 6.2 / 6.4 / Definition 6.1): dispersed configurations and dummy domination.

Regenerates the dispersion measurements: the fraction of (part, mark) cells
inside the dispersed-configuration window, the dummy-vs-real domination check
that Lemma 6.4 needs, and the maximum per-vertex load after Task 3 (bounded by
2L per Definition 4.3).
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.cost import CostLedger
from repro.core.merge import solve_task3
from repro.core.tokens import Token
from repro.cutmatching.game import build_shuffler
from repro.graphs.generators import random_regular_expander
from repro.hierarchy.builder import HierarchyParameters, build_hierarchy

from conftest import quick_sizes

SIZES = quick_sizes([128, 256])
LOADS = [1, 2, 4]


def _prepared_root(n: int):
    graph = random_regular_expander(n, degree=8, seed=1)
    decomposition = build_hierarchy(graph, HierarchyParameters(epsilon=0.5))
    root = decomposition.root
    parts = [sorted(part.vertices) for part in root.parts]
    root.shuffler = build_shuffler(root.virtual_graph, parts, psi=0.1)
    return root


def _measure(n: int, load: int) -> dict:
    root = _prepared_root(n)
    t = len(root.parts)
    tokens = []
    token_id = 0
    for vertex in sorted(root.vertices):
        for slot in range(load):
            token = Token(token_id=token_id, source=vertex, destination=vertex)
            token.part_mark = (vertex * 7 + slot * 13) % t
            tokens.append(token)
            token_id += 1
    ledger = CostLedger()
    result = solve_task3(root, tokens, load=load, ledger=ledger)
    part_of = root.part_of_vertex()
    all_in_marked_part = all(
        part_of[result.assignments[token.token_id]] == token.part_mark for token in tokens
    )
    return {
        "n": n,
        "load": load,
        "parts": t,
        "real_window_fraction": result.real_stats.window_fraction,
        "dummy_window_fraction": result.dummy_stats.window_fraction,
        "fallback_assignments": result.fallback_assignments,
        "max_vertex_load": result.max_vertex_load,
        "load_bound_2L": 2 * load,
        "all_in_marked_part": all_in_marked_part,
        "rounds": result.rounds,
    }


def test_dispersion_window_and_domination(benchmark):
    def run():
        return [_measure(n, 2) for n in SIZES]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[E8] dispersed configuration quality (L=2)")
    print(format_table(rows))
    for row in rows:
        assert row["all_in_marked_part"]
        assert row["real_window_fraction"] >= 0.85
        assert row["max_vertex_load"] <= row["load_bound_2L"]
        assert row["fallback_assignments"] <= row["n"] * 0.05


@pytest.mark.parametrize("load", LOADS)
def test_dispersion_load_sweep(benchmark, load):
    row = benchmark.pedantic(_measure, args=(128, load), rounds=1, iterations=1)
    assert row["all_in_marked_part"]
    assert row["max_vertex_load"] <= row["load_bound_2L"]
