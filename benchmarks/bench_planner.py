"""E8: the cost-model planner's adaptive policy vs every fixed backend.

Portfolio-style strategy selection (no single solver wins every track) is the
planner's whole argument, and this benchmark measures it end to end: a mixed
workload suite — permutation, hotspot, broadcast, adversarial-bipartite —
over three graph sizes routes through

* every **fixed** backend (one service per backend, warmed, timed), and
* the **adaptive** policy (one service with ``policy="adaptive"``, calibrated
  by an untimed exploration phase, then timed identically),

writing one JSON row per (strategy, n, workload) plus per-workload summary
ratios to ``bench-planner.json`` (uploaded as a CI artifact by the
bench-smoke job).

Full-mode acceptance (the ISSUE 5 bar, asserted when not in quick mode):

* adaptive total seconds per workload within 10% of the best fixed backend
  on **every** workload, and
* adaptive strictly beats the worst fixed backend by >= 1.5x on at least
  two workloads.

Quick mode runs the same pipeline at trimmed sizes and only sanity-checks
delivery plus the planner's convergence (a calibrated, non-exploring final
plan), since micro-timings at quick sizes are noise.
"""

import json
import time
from pathlib import Path

from conftest import QUICK, quick_sizes

from repro.analysis.reporting import format_table
from repro.backends import available_backends
from repro.graphs.generators import random_regular_expander
from repro.metrics import MetricsRegistry
from repro.service import RoutingService
from repro.workloads import make_workload

BENCH_SIZES = quick_sizes([64, 128, 256])
REPEATS = 4 if QUICK else 7
#: Queries per timed batch: raises each measurement well above the scheduler
#: noise floor for the sub-millisecond workloads and exercises real batch
#: fan-out (including the planner's chunking decision) instead of
#: batches-of-one.
BATCH_QUERIES = 4
WORKLOAD_SPECS = [
    ("permutation", {"shift": 3}),
    ("hotspot", {"load": 2, "seed": 1}),
    ("broadcast", {"fanout": 8}),
    ("adversarial-bipartite", {"seed": 2}),
]
RESULTS_PATH = Path(__file__).resolve().parent.parent / "bench-planner.json"


def _graph_and_workloads(n: int):
    graph = random_regular_expander(n, degree=8, seed=7)
    workloads = [make_workload(name, graph, **params) for name, params in WORKLOAD_SPECS]
    return graph, workloads


def _timed_pass(service, graph, workloads, seconds_by_workload, backend=None):
    """One timed repeat: each workload routed as its own batch, wall-clocked.

    Wall-clock around submit+route charges the adaptive strategy for its own
    planning overhead (plan cache, cost-model lookups) — the comparison
    against fixed backends is end to end, not routing-only.  Per workload the
    *minimum* over repeats is kept (the standard noise-robust estimator the
    perf harness also uses — any larger sample merely caught scheduler or GC
    noise, on either side of the comparison).
    """
    for workload in workloads:
        start = time.perf_counter()
        for _ in range(BATCH_QUERIES):
            service.submit(graph, workload, backend=backend)
        report = service.route_batch()
        elapsed = time.perf_counter() - start
        assert report.all_delivered
        seconds_by_workload[workload.name] = min(
            seconds_by_workload.get(workload.name, float("inf")), elapsed
        )


def test_adaptive_policy_vs_fixed_backends():
    backends = available_backends()
    rows = []
    # strategy -> workload -> accumulated seconds (across sizes and repeats)
    totals: dict[str, dict[str, float]] = {}

    for n in BENCH_SIZES:
        graph, workloads = _graph_and_workloads(n)

        # One service per strategy, all alive at once so the timed repeats
        # can interleave round-robin: CPU-state drift (frequency scaling,
        # allocator growth) then lands on every strategy equally instead of
        # biasing whichever block ran first.
        services = {
            f"fixed:{backend}": (
                RoutingService(epsilon=0.5, max_workers=4, metrics=MetricsRegistry()),
                backend,
            )
            for backend in backends
        }
        adaptive_service = RoutingService(
            epsilon=0.5, max_workers=4, policy="adaptive", metrics=MetricsRegistry()
        )
        services["adaptive"] = (adaptive_service, None)
        try:
            for strategy, (service, backend) in services.items():
                if backend is not None:
                    for workload in workloads:  # warm-up: artifacts + pool
                        service.route(graph, workload, backend=backend)
            # Adaptive calibration (untimed): the policy probes every
            # candidate twice per workload class (the first cold measurement
            # is provisional), plus one extra pass so the timed phase starts
            # on the converged choice.
            for _ in range(2 * len(backends) + 1):
                for workload in workloads:
                    adaptive_service.route(graph, workload)
            explanation = adaptive_service.explain(graph, workloads[0])
            assert explanation.plan.policy == "adaptive"
            assert "exploring" not in explanation.plan.reason, (
                f"adaptive policy still exploring after calibration: "
                f"{explanation.plan.reason}"
            )

            per_strategy: dict[str, dict[str, float]] = {s: {} for s in services}
            for _ in range(REPEATS):
                for strategy, (service, backend) in services.items():
                    _timed_pass(
                        service, graph, workloads, per_strategy[strategy], backend=backend
                    )
            chosen = {
                workload.name: adaptive_service.explain(graph, workload).plan.backend
                for workload in workloads
            }
        finally:
            for service, _ in services.values():
                service.close()

        for strategy, per_workload in per_strategy.items():
            _fold(totals, strategy, per_workload)
            for row in _rows(strategy, n, per_workload):
                if strategy == "adaptive":
                    row["chosen_backend"] = chosen[row["workload"]]
                rows.append(row)

    summary = _summarize(totals, backends)
    RESULTS_PATH.write_text(
        json.dumps(
            {"meta": {"quick": QUICK, "sizes": BENCH_SIZES, "repeats": REPEATS},
             "rows": rows, "summary": summary},
            indent=2,
        )
        + "\n"
    )
    print(f"\n[E8] planner adaptive vs fixed over n={BENCH_SIZES} (seconds, lower wins)")
    print(format_table(summary))
    print(f"wrote {len(rows)} rows to {RESULTS_PATH.name}")

    if QUICK:
        return  # timings at quick sizes are noise; delivery + convergence checked above

    # ISSUE 5 acceptance: adaptive within 10% of the best fixed backend on
    # every workload...
    for entry in summary:
        assert entry["adaptive_vs_best"] <= 1.10, (
            f"adaptive {entry['adaptive_seconds']:.3f}s on {entry['workload']} "
            f"misses 10% of best fixed {entry['best_fixed']} "
            f"({entry['best_seconds']:.3f}s)"
        )
    # ... and strictly beats the worst fixed backend by >= 1.5x on at least
    # two workloads.
    big_wins = [entry for entry in summary if entry["worst_vs_adaptive"] >= 1.5]
    assert len(big_wins) >= 2, (
        "adaptive beat the worst fixed backend by >=1.5x on only "
        f"{len(big_wins)} workloads: {summary}"
    )


def _fold(totals, strategy, per_workload):
    bucket = totals.setdefault(strategy, {})
    for name, seconds in per_workload.items():
        bucket[name] = bucket.get(name, 0.0) + seconds


def _rows(strategy, n, per_workload):
    return [
        {"strategy": strategy, "n": n, "workload": name, "seconds": seconds,
         "quick": QUICK}
        for name, seconds in sorted(per_workload.items())
    ]


def _summarize(totals, backends):
    """Per-workload ratios: adaptive vs the best and worst fixed backend."""
    summary = []
    for name, _ in WORKLOAD_SPECS:
        fixed = {
            backend: totals[f"fixed:{backend}"][name]
            for backend in backends
        }
        best_backend = min(fixed, key=lambda b: (fixed[b], b))
        worst_backend = max(fixed, key=lambda b: (fixed[b], b))
        adaptive = totals["adaptive"][name]
        summary.append(
            {
                "workload": name,
                "adaptive_seconds": round(adaptive, 4),
                "best_fixed": best_backend,
                "best_seconds": round(fixed[best_backend], 4),
                "worst_fixed": worst_backend,
                "worst_seconds": round(fixed[worst_backend], 4),
                "adaptive_vs_best": round(adaptive / fixed[best_backend], 3),
                "worst_vs_adaptive": round(fixed[worst_backend] / adaptive, 3),
            }
        )
    return summary
