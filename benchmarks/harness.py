#!/usr/bin/env python
"""Unified perf-regression harness: one run, one ``bench-suite.json``, one verdict.

Runs every benchmark scenario three ways —

* ``reference``  — ``REPRO_KERNEL=reference`` + thread pool: the faithful
  pre-kernel (PR 3) hot paths, i.e. the baseline the speedups are against;
* ``numpy``      — vectorized kernels + memoized fast paths, thread pool;
* ``processes``  — numpy kernels + the service's process pool (service and
  cluster scenarios only)

— and writes one ``bench-suite.json`` with per-bench wall times and speedups.
The headline ``speedup`` column is the *optimized* configuration (numpy
kernels; process pool when the machine has >1 core) against the reference.

Regression gate: the run is compared against the checked-in
``benchmarks/baseline.json``.  The gated quantity is ``numpy_speedup``
(numpy-vs-reference on the same machine in the same run), which is stable
across machine speeds; a bench regresses when its speedup falls more than
``--tolerance`` (default 25%) below the blessed value.  Absolute wall-clock
can additionally be gated with ``--wall-tolerance`` for same-machine use.
Process-pool numbers are recorded but never gated — their ratio depends on
the core count of the machine running the harness.

Usage:
    python benchmarks/harness.py                 # full suite, gate vs baseline
    python benchmarks/harness.py --quick         # CI-sized suite
    python benchmarks/harness.py --bless         # re-bless baseline.json
    python benchmarks/harness.py --no-assert     # skip the >=2x acceptance asserts
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"
SUITE_PATH = REPO_ROOT / "bench-suite.json"
NETWORK_PATH = REPO_ROOT / "bench-network.json"
SHM_PATH = REPO_ROOT / "bench-shm.json"

#: PR 6 blessed bench-network.json, the pre-fast-path wire overhead the
#: network fast path (coalescing + fingerprint dedup + group commit) is
#: gated against.  Ratios rather than absolute seconds so the gate is
#: insensitive to how loaded the benchmarking machine happens to be.
PR6_TCP_QPS_RATIO = 66.449 / 118.745  # tcp ran at 0.56x local throughput
PR6_TCP_RTT_RATIO = 0.36181 / 0.16180  # tcp rtt_p99 was 2.24x local

#: Scenarios whose optimized configuration includes the process pool.
POOLED = ("bench_service", "bench_cluster")
#: Scenarios asserted to hit the ISSUE's >=2x bar in full mode.
HEADLINE = ("bench_service", "bench_cluster")


def _quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "").strip().lower() in {
        "1",
        "true",
        "yes",
        "on",
    }


def _best_seconds(fn, repeats: int = 5, inner: int = 1) -> float:
    """Minimum wall time over ``repeats`` samples of ``inner`` calls each.

    The minimum is the standard noise-robust estimator for CPU-bound
    micro-timings (any other sample merely caught scheduler noise); the
    regression gate depends on speedup *ratios*, so both sides use it.
    """
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        samples.append((time.perf_counter() - start) / inner)
    return min(samples)


# -- scenarios ---------------------------------------------------------------------------
#
# Every scenario takes (kernel_name, parallelism) and returns measured wall
# seconds for its hot phase (setup/warmup excluded).  Fresh MetricsRegistry
# instances keep harness runs out of the process-default registry.


def bench_service(kernel_name: str, parallelism: str) -> float:
    """The E5 serving scenario: one fully warm batch on the bench expander."""
    from repro.graphs.generators import random_regular_expander
    from repro.kernels import kernel
    from repro.metrics import MetricsRegistry
    from repro.service import RoutingService
    from repro.workloads import permutation_workload

    from repro.planner import ExecutionPlan
    from repro.service import shm_enabled

    n, batch = (64, 8) if _quick() else (256, 32)
    graph = random_regular_expander(n, degree=8, seed=1)
    workloads = [permutation_workload(graph, shift=shift) for shift in range(1, batch + 1)]
    # Process mode ships artifacts over the shared-memory plane (the
    # configuration the acceptance bar measures); thread mode keeps the
    # historical no-plan path so numpy_speedup stays comparable to baseline.
    plan = None
    if parallelism == "processes" and shm_enabled():
        plan = ExecutionPlan(
            backend="deterministic",
            kernel=kernel_name,
            parallelism="processes",
            artifact_transport="shm",
        )
    with kernel(kernel_name):
        with RoutingService(
            epsilon=0.5,
            max_workers=4,
            parallelism=parallelism,
            metrics=MetricsRegistry(),
        ) as service:
            # Warm the artifact, the pool, and (process mode) the workers.
            service.route(graph, workloads[0])
            start = time.perf_counter()
            for workload in workloads:
                service.submit(graph, workload, plan=plan)
            report = service.route_batch()
            elapsed = time.perf_counter() - start
    assert report.all_delivered and report.preprocess_rounds_incurred == 0
    return elapsed


def bench_cluster(kernel_name: str, parallelism: str) -> float:
    """The E7 cluster scenario: warm measured passes over a 4-shard cluster."""
    from repro.cluster import ClusterCoordinator
    from repro.graphs.generators import random_regular_expander
    from repro.kernels import kernel
    from repro.metrics import MetricsRegistry
    from repro.planner import ExecutionPlan
    from repro.workloads import permutation_workload

    from repro.service import shm_enabled

    n, graph_count, passes = (64, 6, 2) if _quick() else (96, 12, 3)
    graphs = [random_regular_expander(n, degree=8, seed=seed) for seed in range(graph_count)]
    transport = "shm" if parallelism == "processes" and shm_enabled() else "pickle"
    with kernel(kernel_name):
        with ClusterCoordinator(
            shard_count=4,
            cache_capacity=graph_count,  # measure routing, not cache evictions
            default_plan=ExecutionPlan(
                backend="deterministic",
                kernel=kernel_name,
                parallelism=parallelism,
                max_workers=2,
                artifact_transport=transport,
            ),
            metrics=MetricsRegistry(),
        ) as coordinator:
            traffic = [(graph, permutation_workload(graph, shift=3)) for graph in graphs]
            for graph, workload in traffic:  # warm-up pass builds every artifact
                coordinator.submit(graph, workload)
            coordinator.dispatch()
            start = time.perf_counter()
            for _ in range(passes):
                for graph, workload in traffic:
                    coordinator.submit(graph, workload)
                report = coordinator.dispatch()
            elapsed = time.perf_counter() - start
    assert report.all_delivered and report.preprocess_rounds_incurred == 0
    return elapsed


def bench_route_query(kernel_name: str, parallelism: str) -> float:
    """One warm routing query (dispersion + merge + leaf hot path)."""
    import networkx as nx  # noqa: F401  (dependency sanity for the kernels)

    from repro.analysis.experiments import permutation_requests
    from repro.core.router import ExpanderRouter
    from repro.graphs.generators import random_regular_expander
    from repro.kernels import kernel

    n = 64 if _quick() else 96
    graph = random_regular_expander(n, degree=8, seed=1)
    with kernel(kernel_name):
        router = ExpanderRouter(graph, epsilon=0.5)
        router.preprocess()
        requests = permutation_requests(graph, load=2)
        router.route(requests)
        return _best_seconds(lambda: router.route(requests))


def run_fused_gate() -> dict:
    """Fused batch routing vs the per-query reference loop, on one warm router.

    The fused-kernel acceptance bar rides on ``bench_route_query``'s
    instance: all same-graph queries of a warm batch route through one
    stacked :meth:`ExpanderRouter.route_many` call, and the measured speedup
    over the sequential reference loop must clear 5x in full mode.
    """
    from repro.analysis.experiments import permutation_requests
    from repro.core.router import ExpanderRouter
    from repro.graphs.generators import random_regular_expander
    from repro.kernels import kernel

    n, batch = (64, 8) if _quick() else (96, 16)
    graph = random_regular_expander(n, degree=8, seed=1)
    base = permutation_requests(graph, load=2)
    groups = [base[shift:] + base[:shift] for shift in range(batch)]
    with kernel("numpy"):
        router = ExpanderRouter(graph, epsilon=0.5)
        router.preprocess()
        router.route_many(groups)  # warm every per-matching cache
        fused_seconds = _best_seconds(lambda: router.route_many(groups), repeats=3)
    with kernel("reference"):

        def sequential():
            for group in groups:
                router.route(group)

        sequential()
        sequential_seconds = _best_seconds(sequential, repeats=2)
    return {
        "batch": batch,
        "fused_seconds": fused_seconds,
        "reference_sequential_seconds": sequential_seconds,
        "fused_speedup_vs_reference": sequential_seconds / fused_seconds,
    }


def run_shm_bench() -> dict:
    """Zero-copy shm transport vs pickle spill for process-pool serving.

    Each measurement uses a *fresh* service so the workers are cold and the
    artifact transport — publish+attach for shm, spill-write+unpickle for
    pickle — is actually on the measured path, not hidden behind the
    worker-side runner cache.  Threads are measured too so the
    process-vs-threads ratio the acceptance bar cares about is recorded.
    """
    from repro.graphs.generators import random_regular_expander
    from repro.kernels import kernel
    from repro.metrics import MetricsRegistry
    from repro.planner import ExecutionPlan
    from repro.service import RoutingService, leaked_segments
    from repro.workloads import permutation_workload

    n, batch, repeats = (64, 6, 2) if _quick() else (128, 12, 3)
    graph = random_regular_expander(n, degree=8, seed=1)
    workloads = [permutation_workload(graph, shift=shift) for shift in range(1, batch + 1)]

    def measure(parallelism: str, transport: str) -> float:
        plan = ExecutionPlan(
            backend="deterministic",
            kernel="numpy",
            parallelism=parallelism,
            artifact_transport=transport,
        )
        samples = []
        with kernel("numpy"):
            for _ in range(repeats):
                with RoutingService(
                    epsilon=0.5, max_workers=2, parallelism=parallelism,
                    metrics=MetricsRegistry(),
                ) as service:
                    service.route(graph, workloads[0])  # parent-side artifact only
                    start = time.perf_counter()
                    for workload in workloads:
                        service.submit(graph, workload, plan=plan)
                    report = service.route_batch()
                    samples.append(time.perf_counter() - start)
                assert report.all_delivered
        return min(samples)

    shm_seconds = measure("processes", "shm")
    spill_seconds = measure("processes", "pickle")
    thread_seconds = measure("threads", "pickle")
    leaked = leaked_segments()
    result = {
        "meta": {"quick": _quick(), "n": n, "batch": batch, "cpus": os.cpu_count() or 1},
        "shm_seconds": shm_seconds,
        "spill_seconds": spill_seconds,
        "threads_seconds": thread_seconds,
        "shm_speedup_vs_spill": spill_seconds / shm_seconds,
        "process_shm_speedup_vs_threads": thread_seconds / shm_seconds,
        "leaked_segments": leaked,
    }
    print(
        f"[harness] bench_shm: shm {shm_seconds:.3f}s  spill {spill_seconds:.3f}s"
        f"  threads {thread_seconds:.3f}s"
        f"  (shm vs spill x{result['shm_speedup_vs_spill']:.2f})",
        flush=True,
    )
    assert not leaked, f"bench_shm leaked segments: {leaked}"
    return result


def bench_kernel_scheduler(kernel_name: str, parallelism: str) -> float:
    """Fact 2.2 token scheduling over shortest paths on an expander."""
    import networkx as nx

    from repro.congest.scheduler import ScheduledToken, schedule_tokens_along_paths
    from repro.graphs.generators import random_regular_expander
    from repro.kernels import kernel

    n, token_count = (128, 512) if _quick() else (256, 2048)
    graph = random_regular_expander(n, degree=8, seed=1)
    nodes = sorted(graph.nodes())
    tokens = [
        ScheduledToken(
            token_id=index,
            path=tuple(
                nx.shortest_path(graph, nodes[index % n], nodes[(index * 7 + 3) % n])
            ),
        )
        for index in range(token_count)
    ]
    with kernel(kernel_name):
        return _best_seconds(lambda: schedule_tokens_along_paths(tokens))


def bench_kernel_conductance(kernel_name: str, parallelism: str) -> float:
    """Exact brute-force conductance plus the Fiedler sweep estimator."""
    import networkx as nx

    from repro.graphs.conductance import estimate_conductance, sweep_cut
    from repro.graphs.generators import random_regular_expander
    from repro.kernels import kernel

    exact_graph = nx.gnp_random_graph(12, 0.5, seed=1)
    sweep_graph = random_regular_expander(64 if _quick() else 128, degree=8, seed=1)

    def run():
        estimate_conductance(exact_graph)
        sweep_cut(sweep_graph)

    with kernel(kernel_name):
        return _best_seconds(run, inner=3)


def bench_kernel_sort(kernel_name: str, parallelism: str) -> float:
    """The comparator merge-split simulation over a full Batcher network."""
    import random

    from repro.kernels import kernel
    from repro.sorting.expander_sort import SortItem, expander_sort

    n, load = (64, 2) if _quick() else (128, 4)
    rng = random.Random(9)
    vertices = list(range(n))
    items_at = {
        vertex: [
            SortItem(key=rng.randint(0, 1000), tag=slot, value=(vertex, slot))
            for slot in range(load)
        ]
        for vertex in vertices
    }
    with kernel(kernel_name):
        return _best_seconds(
            lambda: expander_sort(
                vertices,
                {vertex: list(items) for vertex, items in items_at.items()},
                load,
                engine="comparator",
            )
        )


def bench_kernel_walk_matrix(kernel_name: str, parallelism: str) -> float:
    """Building cut-matching walk matrices (Definition 5.2) on a large cluster graph.

    Times the matrix *construction* only — the subsequent ``R_i`` product is a
    BLAS matmul that is identical under both kernels and would just add noise.
    """
    import random

    from repro.cutmatching.potential import walk_matrix
    from repro.kernels import kernel

    t = 128 if _quick() else 256
    rng = random.Random(5)
    matchings = []
    for _ in range(16):
        indices = list(range(t))
        rng.shuffle(indices)
        matchings.append(
            {
                (min(a, b), max(a, b)): rng.uniform(0.2, 1.0)
                for a, b in zip(indices[::2], indices[1::2])
            }
        )

    def run():
        for matching in matchings:
            walk_matrix(t, matching)

    with kernel(kernel_name):
        return _best_seconds(run, inner=3)


SCENARIOS = {
    "bench_service": bench_service,
    "bench_cluster": bench_cluster,
    "bench_route_query": bench_route_query,
    "kernel_scheduler": bench_kernel_scheduler,
    "kernel_conductance": bench_kernel_conductance,
    "kernel_sort": bench_kernel_sort,
    "kernel_walk_matrix": bench_kernel_walk_matrix,
}


# -- planner policy gate -----------------------------------------------------------------


def run_policy_gate(policy: str) -> dict:
    """Compact planner gate: the policy vs every fixed backend, interleaved.

    A scaled-down ``benchmarks/bench_planner.py``: a mixed workload set over
    two graph sizes, one service per fixed backend plus one under ``policy``,
    timed round-robin (so CPU drift hits every strategy equally) with the
    min-over-repeats estimator.  Returns per-workload totals and the
    worst-case policy-vs-best-fixed ratio; the caller gates on it.
    """
    from repro.backends import available_backends
    from repro.graphs.generators import random_regular_expander
    from repro.metrics import MetricsRegistry
    from repro.service import RoutingService
    from repro.workloads import make_workload

    sizes = (48, 64) if _quick() else (96, 128)
    repeats = 3 if _quick() else 5
    batch_queries = 4
    specs = [
        ("permutation", {"shift": 3}),
        ("broadcast", {"fanout": 8}),
        ("adversarial-bipartite", {"seed": 2}),
    ]
    backends = available_backends()
    totals: dict[str, dict[str, float]] = {}

    def timed_pass(service, graph, workloads, bucket, backend=None):
        for workload in workloads:
            start = time.perf_counter()
            for _ in range(batch_queries):
                service.submit(graph, workload, backend=backend)
            report = service.route_batch()
            elapsed = time.perf_counter() - start
            assert report.all_delivered, f"{workload.name}: undelivered tokens"
            bucket[workload.name] = min(bucket.get(workload.name, float("inf")), elapsed)

    converged = True
    for n in sizes:
        graph = random_regular_expander(n, degree=8, seed=7)
        workloads = [make_workload(name, graph, **params) for name, params in specs]
        services = {
            f"fixed:{backend}": (
                RoutingService(epsilon=0.5, max_workers=4, metrics=MetricsRegistry()),
                backend,
            )
            for backend in backends
        }
        policy_service = RoutingService(
            epsilon=0.5, max_workers=4, policy=policy, metrics=MetricsRegistry()
        )
        services[f"policy:{policy}"] = (policy_service, None)
        try:
            for strategy, (service, backend) in services.items():
                if backend is not None:
                    for workload in workloads:
                        service.route(graph, workload, backend=backend)
            for _ in range(2 * len(backends) + 1):  # calibration (untimed)
                for workload in workloads:
                    policy_service.route(graph, workload)
            if policy == "adaptive":
                for workload in workloads:
                    reason = policy_service.explain(graph, workload).plan.reason
                    converged = converged and "exploring" not in reason
            for _ in range(repeats):
                for strategy, (service, backend) in services.items():
                    bucket = totals.setdefault(strategy, {})
                    timed_pass(service, graph, workloads, bucket, backend=backend)
        finally:
            for service, _ in services.values():
                service.close()

    workload_rows = {}
    worst_ratio = 0.0
    for name, _ in specs:
        fixed = {b: totals[f"fixed:{b}"][name] for b in backends}
        best = min(fixed.values())
        mine = totals[f"policy:{policy}"][name]
        ratio = mine / best
        worst_ratio = max(worst_ratio, ratio)
        workload_rows[name] = {
            "policy_seconds": mine,
            "best_fixed_seconds": best,
            "best_fixed": min(fixed, key=lambda b: (fixed[b], b)),
            "policy_vs_best": ratio,
        }
        print(
            f"[harness] planner gate {name}: {policy} {mine:.4f}s vs best fixed "
            f"{best:.4f}s (x{ratio:.2f})",
            flush=True,
        )
    return {
        "policy": policy,
        "sizes": list(sizes),
        "repeats": repeats,
        "converged": converged,
        "workloads": workload_rows,
        "policy_vs_best_max": worst_ratio,
    }


def _gateway_coalesce_row(graphs, plan, *, coalesce: bool, quick: bool) -> tuple[dict, str]:
    """One gateway scenario: K submitter threads over one gateway, coalescing
    on (``max_batch=16``) or off (``max_batch=1`` — every submit admits alone).

    Returns the measured row and the drained ``ClusterReport.signature()`` so
    the caller can assert coalesced-vs-sequential byte parity.
    """
    import tempfile
    import threading
    from pathlib import Path as _Path

    from repro.cluster import ClusterCoordinator
    from repro.durability import CoordinatorJournal
    from repro.metrics import MetricsRegistry
    from repro.net import ClusterClient, ClusterGateway
    from repro.workloads import permutation_workload

    submitters, total = (4, 32) if quick else (4, 128)
    workloads = [permutation_workload(graph, shift=1) for graph in graphs]
    jobs = [
        (graphs[index % 2], workloads[index % 2], index)
        for index in range(total)
    ]
    metrics = MetricsRegistry()
    with tempfile.TemporaryDirectory() as tmp:
        # Journaled on purpose: group commit is what coalescing buys — one
        # fsync per admission window instead of one per submit.
        journal = CoordinatorJournal(_Path(tmp) / "journal", metrics=metrics)
        coordinator = ClusterCoordinator(
            shard_count=2, cache_capacity=4, default_plan=plan, metrics=metrics,
            journal=journal,
        )
        with coordinator, ClusterGateway(
            coordinator,
            socket_path=os.path.join(tmp, "bench.sock"),
            max_batch=16 if coalesce else 1,
            max_delay_ms=2.0,
        ) as gateway:
            start = time.perf_counter()

            def submit_chunk(chunk):
                with ClusterClient(gateway.address, metrics=MetricsRegistry()) as client:
                    for graph, workload, index in chunk:
                        request = workload.requests[index % len(workload.requests)]
                        decision = client.submit(graph, [request], workload=workload.name)
                        assert decision.accepted, f"gateway bench: submit {index} rejected"

            threads = [
                threading.Thread(target=submit_chunk, args=(jobs[rank::submitters],))
                for rank in range(submitters)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            with ClusterClient(gateway.address, metrics=MetricsRegistry()) as client:
                report = client.dispatch()
            elapsed = time.perf_counter() - start

    assert report.query_count == total, (
        f"gateway bench: {report.query_count}/{total} queries served"
    )

    def counter(name: str) -> float:
        family = metrics.get(name)
        return family.labels(role="gateway").value if family is not None else 0.0

    def journal_counter(name: str) -> float:
        series = metrics.as_dict().get(name, {})
        return float(sum(series.values()))

    row = {
        "coalesce": coalesce,
        "submitters": submitters,
        "submits": total,
        "elapsed_seconds": elapsed,
        "throughput_qps": total / elapsed,
        "coalesced_batches": counter("repro_net_coalesced_batches_total"),
        "coalesced_submits": counter("repro_net_coalesced_submits_total"),
        "graph_uploads": counter("repro_net_graph_uploads_total"),
        "payloads_deduped": counter("repro_net_payloads_deduped_total"),
        "journal_group_commits": journal_counter("repro_journal_group_commits_total"),
        "journal_group_records": journal_counter("repro_journal_group_records_total"),
    }
    return row, report.signature()


def run_network_bench(coalesce: str = "both") -> dict:
    """TCP serving smoke: local vs tcp under the same seeded open-loop load.

    Drives identical traffic through a ``transport="local"`` and a
    ``transport="tcp"`` cluster (shard server processes over unix sockets)
    and asserts the serving tier's two invariants — no batch is lost
    (offered == completed + rejected + shed) and the per-window
    ``ClusterReport.signature()`` values match byte for byte — then reports
    throughput and latency percentiles per transport so the wire's overhead
    is a tracked number, not a guess.

    The fast-path additions are gated here too: tcp/local ratios must beat
    the PR 6 baseline (full mode: tcp >= 0.85x local throughput and an
    rtt_p99 ratio at least 2x better than PR 6's 2.24x; quick mode keeps the
    same shape with slack for CI scheduling noise), and the gateway rows
    (``coalesce`` = ``"on"``/``"off"``/``"both"``) must produce byte-identical
    drained signatures whether submits coalesced or admitted one by one.
    """
    from repro.cluster import ClusterCoordinator, OpenLoopLoadGenerator
    from repro.graphs.generators import random_regular_expander
    from repro.metrics import MetricsRegistry
    from repro.planner import ExecutionPlan

    n, rate, duration, interval = (48, 80.0, 0.4, 0.1) if _quick() else (64, 120.0, 1.5, 0.25)
    graphs = [random_regular_expander(n, degree=6, seed=seed) for seed in range(2)]
    plan = ExecutionPlan(backend="deterministic", max_workers=2)
    transports: dict[str, dict] = {}
    signatures: dict[str, list] = {}
    for transport in ("local", "tcp"):
        print(f"[harness] network bench: {transport} ...", flush=True)
        coordinator = ClusterCoordinator(
            shard_count=2,
            cache_capacity=4,
            default_plan=plan,
            metrics=MetricsRegistry(),
            transport=transport,
        )
        try:
            generator = OpenLoopLoadGenerator(
                graphs, rate=rate, duration=duration, dispatch_interval=interval, seed=11
            )
            slo = generator.run(coordinator)
        finally:
            coordinator.close()
        lost = slo.offered - slo.completed - slo.rejected - slo.shed
        assert lost == 0, f"network bench ({transport}): {lost} batches lost"
        signatures[transport] = [report.signature() for report in slo.cluster_reports]
        summary = slo.summary()
        transports[transport] = {
            "offered": slo.offered,
            "completed": slo.completed,
            "lost": lost,
            "throughput_qps": slo.throughput_qps,
            "p50_seconds": slo.latency_quantile(0.50),
            "p99_seconds": slo.latency_quantile(0.99),
            "rtt_p50_seconds": summary["rtt_p50_seconds"],
            "rtt_p99_seconds": summary["rtt_p99_seconds"],
            "transport_overhead_seconds": summary["transport_overhead_seconds"],
        }
        print(
            f"[harness] network bench {transport}: {slo.completed}/{slo.offered} served,"
            f" p99 {transports[transport]['p99_seconds']:.4f}s"
            f" rtt_p99 {transports[transport]['rtt_p99_seconds']:.4f}s",
            flush=True,
        )
    assert signatures["local"] == signatures["tcp"], (
        "network bench: local vs tcp ClusterReport signatures diverged"
    )
    print(
        f"[harness] network bench: signature parity across "
        f"{len(signatures['local'])} dispatch windows ✓",
        flush=True,
    )

    quick = _quick()
    qps_ratio = transports["tcp"]["throughput_qps"] / transports["local"]["throughput_qps"]
    rtt_ratio = transports["tcp"]["rtt_p99_seconds"] / transports["local"]["rtt_p99_seconds"]
    # Full mode holds the acceptance bar exactly; quick runs are tiny (tens
    # of batches) so the same gates get headroom for scheduler noise.
    min_qps_ratio = 0.60 if quick else 0.85
    max_rtt_ratio = 1.50 if quick else PR6_TCP_RTT_RATIO / 2
    assert qps_ratio >= min_qps_ratio, (
        f"network bench: tcp at {qps_ratio:.2f}x local throughput "
        f"(gate {min_qps_ratio:.2f}x; PR 6 baseline was {PR6_TCP_QPS_RATIO:.2f}x)"
    )
    assert rtt_ratio <= max_rtt_ratio, (
        f"network bench: tcp rtt_p99 at {rtt_ratio:.2f}x local "
        f"(gate {max_rtt_ratio:.2f}x; PR 6 baseline was {PR6_TCP_RTT_RATIO:.2f}x)"
    )
    print(
        f"[harness] network bench: tcp/local qps {qps_ratio:.2f}x (PR 6: "
        f"{PR6_TCP_QPS_RATIO:.2f}x), rtt_p99 {rtt_ratio:.2f}x (PR 6: "
        f"{PR6_TCP_RTT_RATIO:.2f}x) ✓",
        flush=True,
    )

    gateway_rows: dict[str, dict] = {}
    gateway_signatures: dict[str, str] = {}
    modes = {"both": ("on", "off"), "on": ("on",), "off": ("off",)}[coalesce]
    for mode in modes:
        print(f"[harness] network bench: gateway coalesce {mode} ...", flush=True)
        row, signature = _gateway_coalesce_row(graphs, plan, coalesce=mode == "on", quick=quick)
        gateway_rows[f"coalesce_{mode}"] = row
        gateway_signatures[mode] = signature
        print(
            f"[harness] network bench gateway coalesce {mode}: "
            f"{row['submits']} submits in {row['elapsed_seconds']:.3f}s "
            f"({row['throughput_qps']:.1f} qps, "
            f"{row['coalesced_batches']:.0f} coalesced windows)",
            flush=True,
        )
    if {"on", "off"} <= set(gateway_signatures):
        assert gateway_signatures["on"] == gateway_signatures["off"], (
            "network bench: coalesced vs sequential ClusterReport signatures diverged"
        )
        print("[harness] network bench: coalesced/sequential signature parity ✓", flush=True)

    return {
        "meta": {"quick": quick, "rate": rate, "duration": duration, "shards": 2},
        "signature_windows": len(signatures["local"]),
        "transports": transports,
        "ratios": {
            "tcp_vs_local_qps": qps_ratio,
            "tcp_vs_local_rtt_p99": rtt_ratio,
            "pr6_tcp_vs_local_qps": PR6_TCP_QPS_RATIO,
            "pr6_tcp_vs_local_rtt_p99": PR6_TCP_RTT_RATIO,
        },
        "gateway": gateway_rows,
    }


# -- driver ------------------------------------------------------------------------------


def run_suite(parallel_mode: str) -> dict:
    cpus = os.cpu_count() or 1
    pooled_mode = parallel_mode
    if pooled_mode == "auto":
        pooled_mode = "processes" if cpus >= 2 else "threads"
    benches: dict[str, dict] = {}
    for name, scenario in SCENARIOS.items():
        print(f"[harness] {name}: reference ...", flush=True)
        reference_seconds = scenario("reference", "threads")
        print(f"[harness] {name}: numpy ...", flush=True)
        numpy_seconds = scenario("numpy", "threads")
        row = {
            "reference_seconds": reference_seconds,
            "numpy_seconds": numpy_seconds,
            "numpy_speedup": reference_seconds / numpy_seconds,
        }
        if name in POOLED:
            print(f"[harness] {name}: processes ...", flush=True)
            processes_seconds = scenario("numpy", "processes")
            row["processes_seconds"] = processes_seconds
            row["process_speedup_vs_threads"] = numpy_seconds / processes_seconds
            if pooled_mode == "processes":
                row["optimized_mode"] = "numpy+processes"
                row["optimized_seconds"] = processes_seconds
            else:
                row["optimized_mode"] = "numpy+threads"
                row["optimized_seconds"] = numpy_seconds
        else:
            row["optimized_mode"] = "numpy"
            row["optimized_seconds"] = numpy_seconds
        row["speedup"] = reference_seconds / row["optimized_seconds"]
        if name == "bench_route_query":
            print(f"[harness] {name}: fused gate ...", flush=True)
            fused = run_fused_gate()
            row.update(fused)
            print(
                f"[harness] {name}: fused batch of {fused['batch']} "
                f"x{fused['fused_speedup_vs_reference']:.2f} vs reference",
                flush=True,
            )
        benches[name] = row
        print(
            f"[harness] {name}: reference {reference_seconds:.3f}s"
            f"  optimized {row['optimized_seconds']:.3f}s ({row['optimized_mode']})"
            f"  speedup {row['speedup']:.2f}x",
            flush=True,
        )
    return {
        "meta": {
            "quick": _quick(),
            "cpus": cpus,
            "pooled_mode": pooled_mode,
            "python": sys.version.split()[0],
        },
        "benches": benches,
    }


def compare_to_baseline(
    suite: dict, baseline: dict, tolerance: float, wall_tolerance: float | None
) -> list[str]:
    """Regressions of this run against the blessed baseline (empty = pass)."""
    mode = "quick" if suite["meta"]["quick"] else "full"
    blessed = baseline.get(mode, {})
    problems = []
    for name, row in suite["benches"].items():
        reference_row = blessed.get(name)
        if reference_row is None:
            continue
        floor = reference_row["numpy_speedup"] * (1.0 - tolerance)
        if row["numpy_speedup"] < floor:
            problems.append(
                f"{name}: numpy speedup {row['numpy_speedup']:.2f}x fell below "
                f"{floor:.2f}x (blessed {reference_row['numpy_speedup']:.2f}x, "
                f"tolerance {tolerance:.0%})"
            )
        if wall_tolerance is not None:
            ceiling = reference_row["optimized_seconds"] * (1.0 + wall_tolerance)
            if row["optimized_seconds"] > ceiling:
                problems.append(
                    f"{name}: optimized wall {row['optimized_seconds']:.3f}s exceeded "
                    f"{ceiling:.3f}s (blessed {reference_row['optimized_seconds']:.3f}s, "
                    f"tolerance {wall_tolerance:.0%})"
                )
    return problems


def bless(suite: dict, baseline_path: Path) -> None:
    mode = "quick" if suite["meta"]["quick"] else "full"
    existing = {}
    if baseline_path.exists():
        existing = json.loads(baseline_path.read_text())
    existing[mode] = {
        name: {
            "reference_seconds": row["reference_seconds"],
            "optimized_seconds": row["optimized_seconds"],
            "numpy_speedup": row["numpy_speedup"],
            "speedup": row["speedup"],
        }
        for name, row in suite["benches"].items()
    }
    existing["blessed_meta"] = existing.get("blessed_meta", {})
    existing["blessed_meta"][mode] = suite["meta"]
    baseline_path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    print(f"[harness] blessed {mode} baseline -> {baseline_path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized scenario sweep")
    parser.add_argument("--bless", action="store_true", help="rewrite baseline.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative numpy-speedup regression (default 0.25)",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=None,
        help="optionally also gate absolute optimized wall seconds (same-machine runs)",
    )
    parser.add_argument(
        "--parallelism",
        choices=("auto", "threads", "processes"),
        default="auto",
        help="optimized configuration's pool mode (default: auto by core count)",
    )
    parser.add_argument(
        "--policy",
        choices=("cost", "adaptive"),
        default=None,
        help="additionally gate the query planner policy against fixed backends",
    )
    parser.add_argument(
        "--network",
        action="store_true",
        help="also run the local-vs-tcp serving smoke (always on with --quick)",
    )
    parser.add_argument(
        "--coalesce",
        choices=("on", "off", "both"),
        default="both",
        help="which gateway coalescing rows the network bench measures",
    )
    parser.add_argument("--output", type=Path, default=SUITE_PATH)
    parser.add_argument("--network-output", type=Path, default=NETWORK_PATH)
    parser.add_argument("--shm-output", type=Path, default=SHM_PATH)
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    parser.add_argument(
        "--no-assert",
        action="store_true",
        help="skip the full-mode >=2x acceptance assertions",
    )
    args = parser.parse_args(argv)
    if args.quick:
        os.environ["REPRO_BENCH_QUICK"] = "1"

    suite = run_suite(args.parallelism)
    if args.policy is not None:
        print(f"[harness] planner policy gate ({args.policy}) ...", flush=True)
        suite["planner"] = run_policy_gate(args.policy)
    args.output.write_text(json.dumps(suite, indent=2) + "\n")
    print(f"[harness] wrote {args.output}")

    # The tcp serving smoke rides along in quick (CI) mode: its zero-loss and
    # signature-parity assertions are the cheap canary for the network tier.
    if args.network or args.quick:
        network = run_network_bench(coalesce=args.coalesce)
        args.network_output.write_text(json.dumps(network, indent=2) + "\n")
        print(f"[harness] wrote {args.network_output}")

    # The shm transport comparison always runs (quick and full): cold-worker
    # shm-vs-spill is the direct measure of the zero-copy plane, independent
    # of core count.
    print("[harness] bench_shm ...", flush=True)
    shm_bench = run_shm_bench()
    args.shm_output.write_text(json.dumps(shm_bench, indent=2) + "\n")
    print(f"[harness] wrote {args.shm_output}")

    if args.bless:
        bless(suite, args.baseline)
        return 0

    # Acceptance bar (full mode only; quick sizes are too small to be meaningful).
    if not args.no_assert and not suite["meta"]["quick"]:
        for name in HEADLINE:
            speedup = suite["benches"][name]["speedup"]
            assert speedup >= 2.0, (
                f"{name}: optimized speedup {speedup:.2f}x below the 2x acceptance bar"
            )
        print("[harness] acceptance: bench_service and bench_cluster >= 2x ✓")
        fused_speedup = suite["benches"]["bench_route_query"]["fused_speedup_vs_reference"]
        assert fused_speedup >= 5.0, (
            f"bench_route_query: fused batch speedup {fused_speedup:.2f}x "
            f"below the 5x acceptance bar"
        )
        print(f"[harness] acceptance: fused batch routing {fused_speedup:.2f}x >= 5x ✓")
        # Process-beats-threads needs real parallelism to be observable; on a
        # single-core runner the process pool can only lose, so the bar is
        # gated on the core count (the shm-vs-spill ratio above is the
        # core-count-independent measure of the transport itself).
        if (os.cpu_count() or 1) >= 2:
            for name in POOLED:
                ratio = suite["benches"][name]["process_speedup_vs_threads"]
                assert ratio >= 1.0, (
                    f"{name}: shm-enabled process pool at {ratio:.2f}x of threads "
                    f"(acceptance bar 1.0x)"
                )
            print("[harness] acceptance: shm-enabled processes >= threads ✓")

    # Planner gate: the policy must converge and stay near the best fixed
    # backend.  The ceilings are deliberately loose: at the gate's sizes the
    # top two backends are near-ties, so one noisy calibration probe can
    # flip the measured winner (observed up to ~2.5x on shared CI runners) —
    # while the regressions this gate exists to catch (failure to converge,
    # settling on a pathological backend) show up at 5-100x.  The strict
    # 10%-of-best bar lives in benchmarks/bench_planner.py full mode, which
    # times larger interleaved sweeps.
    if args.policy is not None and not args.no_assert:
        gate = suite["planner"]
        ceiling = 3.0 if suite["meta"]["quick"] else 2.0
        assert gate["converged"], f"planner policy {args.policy} failed to converge"
        assert gate["policy_vs_best_max"] <= ceiling, (
            f"planner policy {args.policy} fell to "
            f"{gate['policy_vs_best_max']:.2f}x of the best fixed backend "
            f"(ceiling {ceiling:.1f}x)"
        )
        print(
            f"[harness] planner gate: {args.policy} within "
            f"{gate['policy_vs_best_max']:.2f}x of best fixed ✓"
        )

    # Teardown audit: any repro-* segment still in /dev/shm is a leak — the
    # stores and finalizers above should have unlinked everything.
    from repro.service import leaked_segments

    leaked = leaked_segments()
    assert not leaked, f"harness teardown: leaked shm segments {leaked}"
    print("[harness] /dev/shm audit: no leaked segments ✓")

    if not args.baseline.exists():
        print(f"[harness] no baseline at {args.baseline}; run with --bless to create one")
        return 0
    baseline = json.loads(args.baseline.read_text())
    problems = compare_to_baseline(suite, baseline, args.tolerance, args.wall_tolerance)
    if problems:
        for problem in problems:
            print(f"[harness] REGRESSION {problem}")
        return 1
    print("[harness] no regressions vs baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
