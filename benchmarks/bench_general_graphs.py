"""E10 (Appendix E): routing on general (non-constant-degree) expanders via the split.

Regenerates the measurements: sparsity preservation of the expander split
(Psi(G_diamond) = Theta(Phi(G))) and end-to-end routing of degree-proportional
loads through the GeneralGraphRouter.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core.general import GeneralGraphRouter
from repro.core.tokens import RoutingRequest
from repro.graphs.conductance import estimate_conductance
from repro.graphs.expander_split import expander_split
from repro.graphs.generators import skewed_degree_expander

from conftest import quick_sizes

SIZES = quick_sizes([48, 96])


def _measure(n: int) -> dict:
    graph = skewed_degree_expander(n, hub_count=3, degree=6, seed=5)
    split = expander_split(graph)
    original_phi = estimate_conductance(graph)
    split_phi = estimate_conductance(split.split)
    max_degree_original = max(degree for _, degree in graph.degree())
    max_degree_split = max(degree for _, degree in split.split.degree())

    router = GeneralGraphRouter(graph, epsilon=0.5)
    router.preprocess()
    requests = []
    for vertex in sorted(graph.nodes()):
        copies = 1 + graph.degree(vertex) // 10
        for copy in range(copies):
            requests.append(RoutingRequest(source=vertex, destination=(vertex * 5 + copy + 1) % n))
    outcome = router.route(requests)
    return {
        "n": n,
        "split_n": split.split_size(),
        "max_degree_original": max_degree_original,
        "max_degree_split": max_degree_split,
        "phi_original": original_phi,
        "phi_split": split_phi,
        "phi_ratio": split_phi / max(original_phi, 1e-9),
        "tokens": outcome.total_tokens,
        "delivered": outcome.delivered,
        "query_rounds": outcome.query_rounds,
    }


def test_general_graph_routing(benchmark):
    def run():
        return [_measure(n) for n in SIZES]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[E10] general expanders via the expander split")
    print(format_table(rows))
    for row in rows:
        assert row["delivered"] == row["tokens"]
        assert row["max_degree_split"] < row["max_degree_original"]
        # Theta-preservation with a generous constant window.
        assert row["phi_ratio"] >= 1 / 10


@pytest.mark.parametrize("n", SIZES)
def test_general_graph_single_size(benchmark, n):
    row = benchmark.pedantic(_measure, args=(n,), rounds=1, iterations=1)
    assert row["delivered"] == row["tokens"]
