"""Shared benchmark fixtures: small preprocessed routers and workloads.

Benchmark scale note: the full recursion is simulated in Python, so the
benchmark graphs are kept at a few hundred vertices (the repro hint "networkx
prototyping easy; large instances slow" applies).  The *shapes* the paper
claims — who wins, how costs scale, where the tradeoff bends — are what the
benchmarks check and what EXPERIMENTS.md records.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.analysis.experiments import permutation_requests  # noqa: E402
from repro.core.router import ExpanderRouter  # noqa: E402
from repro.graphs.generators import random_regular_expander  # noqa: E402

BENCH_SIZES = [64, 128, 256]
BENCH_EPSILONS = [0.34, 0.5, 0.7]


@pytest.fixture(scope="session")
def bench_graph():
    """The default benchmark expander (256 vertices, degree 8)."""
    return random_regular_expander(256, degree=8, seed=1)


@pytest.fixture(scope="session")
def bench_router(bench_graph):
    """A preprocessed router on the benchmark expander."""
    router = ExpanderRouter(bench_graph, epsilon=0.5)
    router.preprocess()
    return router


@pytest.fixture(scope="session")
def bench_requests(bench_graph):
    """A load-2 permutation routing instance on the benchmark expander."""
    return permutation_requests(bench_graph, load=2)
