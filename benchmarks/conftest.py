"""Shared benchmark fixtures: small preprocessed routers and workloads.

Benchmark scale note: the full recursion is simulated in Python, so the
benchmark graphs are kept at a few hundred vertices (the repro hint "networkx
prototyping easy; large instances slow" applies).  The *shapes* the paper
claims — who wins, how costs scale, where the tradeoff bends — are what the
benchmarks check and what EXPERIMENTS.md records.

CI quick mode: setting ``REPRO_BENCH_QUICK=1`` trims every size sweep to its
smallest points (see :func:`quick_sizes`), which is what the CI bench-smoke
job runs.  Full sweeps are for local runs and EXPERIMENTS.md regeneration.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.analysis.experiments import permutation_requests  # noqa: E402
from repro.core.router import ExpanderRouter  # noqa: E402
from repro.graphs.generators import random_regular_expander  # noqa: E402

QUICK = os.environ.get("REPRO_BENCH_QUICK", "").strip().lower() in {"1", "true", "yes", "on"}


def quick_sizes(sizes):
    """The benchmark sweep for ``sizes``: all of them, or the smallest in quick mode.

    Quick mode keeps the two smallest points, not one, because several
    benchmarks fit growth curves through their sweep and a fit needs at least
    two samples.
    """
    ordered = sorted(sizes)
    return ordered[:2] if QUICK else list(sizes)


def quick_points(points):
    """Like :func:`quick_sizes` for ``(n, ...)`` parameter tuples."""
    if not QUICK:
        return list(points)
    smallest = min(point[0] for point in points)
    return [point for point in points if point[0] == smallest]


BENCH_SIZES = quick_sizes([64, 128, 256])
BENCH_EPSILONS = [0.34, 0.5, 0.7]


@pytest.fixture(scope="session")
def bench_graph():
    """The default benchmark expander (256 vertices, degree 8; smaller in quick mode)."""
    return random_regular_expander(max(BENCH_SIZES), degree=8, seed=1)


@pytest.fixture(scope="session")
def bench_router(bench_graph):
    """A preprocessed router on the benchmark expander."""
    router = ExpanderRouter(bench_graph, epsilon=0.5)
    router.preprocess()
    return router


@pytest.fixture(scope="session")
def bench_requests(bench_graph):
    """A load-2 permutation routing instance on the benchmark expander."""
    return permutation_requests(bench_graph, load=2)
