"""E2 (Corollary 1.2): single routing instance, ours vs baselines.

Regenerates the comparison series: for growing n, the rounds of (a) our
deterministic router (query only, and query+preprocessing), (b) the naive
shortest-path baseline, (c) the randomized GKS-style baseline, and (d) the
analytic CS20/GKS bounds.  The paper's claim is about growth shape: the
deterministic cost now matches the randomized 2^{O(sqrt(log n log log n))}
shape and improves on CS20's 2^{O(log^{2/3} n ...)}.
"""


from repro.analysis.complexity import fit_power_law
from repro.analysis.experiments import run_single_instance_comparison
from repro.analysis.reporting import format_table

from conftest import quick_sizes

SIZES = quick_sizes([64, 128, 256])


def test_single_instance_comparison(benchmark):
    def run():
        return [run_single_instance_comparison(n, epsilon=0.5, load=2) for n in SIZES]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[E2] single-instance routing: ours vs baselines")
    print(
        format_table(
            rows,
            [
                "n",
                "ours_query_rounds",
                "ours_total_rounds",
                "naive_rounds",
                "naive_congestion",
                "randomized_rounds",
                "cs20_predicted",
                "gks_predicted",
            ],
        )
    )
    assert all(row["ours_delivered"] for row in rows)
    # Shape check: the analytic CS20 curve grows faster than the GKS curve we match.
    cs20 = fit_power_law(SIZES, [row["cs20_predicted"] for row in rows])
    gks = fit_power_law(SIZES, [row["gks_predicted"] for row in rows])
    assert cs20.exponent > gks.exponent


def test_ours_per_token_cost_growth(benchmark):
    def run():
        rows = [run_single_instance_comparison(n, epsilon=0.5, load=1) for n in SIZES]
        return [row["ours_query_rounds"] for row in rows]

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    fit = fit_power_law(SIZES, series)
    print(f"\n[E2] ours query-round growth exponent over n: {fit.exponent:.2f}")
    # At these sizes the hierarchy depth jumps from 2 to 3 levels inside the
    # sweep, which inflates the fitted exponent (a discretisation artefact the
    # asymptotic polylog^{O(1/eps)} bound does not have); the check is only
    # that the growth stays polynomially bounded with a small exponent rather
    # than the exponential-in-levels blow-up a broken recursion would show.
    assert fit.exponent < 4.5
