"""E4 (Theorems 5.6 / 6.11): expander sorting query cost scales as L * polylog(n).

Regenerates the series: sorting L*n tokens for growing L and n, reporting the
charged rounds; the claim is linear scaling in L and polylog scaling in n,
plus correctness (global sortedness, load preservation).
"""

import pytest

from repro.analysis.complexity import fit_polylog
from repro.analysis.reporting import format_table
from repro.sorting.expander_sort import SortItem, expander_sort, is_globally_sorted

from conftest import quick_sizes

SIZES = quick_sizes([64, 128, 256, 512])
LOADS = [1, 2, 4, 8]


def _instance(n: int, load: int) -> dict:
    vertices = list(range(n))
    items = {
        vertex: [
            SortItem(key=(vertex * 31 + slot * 17) % 97, tag=f"{vertex}-{slot}")
            for slot in range(load)
        ]
        for vertex in vertices
    }
    result = expander_sort(vertices, items, load, exchange_quality=4, engine="oracle")
    assert is_globally_sorted(result.placement, vertices)
    return {"n": n, "load": load, "rounds": result.rounds, "depth": result.network_depth}


def test_sorting_cost_scales_linearly_in_load(benchmark):
    def run():
        return [_instance(256, load) for load in LOADS]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[E4] expander sorting: rounds vs load (n=256)")
    print(format_table(rows))
    base = rows[0]["rounds"]
    for row in rows:
        assert row["rounds"] == base * row["load"]


def test_sorting_cost_scales_polylog_in_n(benchmark):
    def run():
        return [_instance(n, 2) for n in SIZES]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[E4] expander sorting: rounds vs n (L=2)")
    print(format_table(rows))
    fit = fit_polylog(SIZES, [row["rounds"] for row in rows])
    print(f"polylog exponent of the fit: {fit.exponent:.2f}")
    # Batcher depth is Theta(log^2 n): the polylog exponent should be ~2, far
    # from what a polynomial-in-n growth would produce (>5 over this range).
    assert fit.exponent < 4.0


@pytest.mark.parametrize("engine", ["comparator", "oracle"])
def test_sorting_engines_throughput(benchmark, engine):
    vertices = list(range(128))
    items = {
        vertex: [SortItem(key=(vertex * 13 + slot) % 41, tag=f"{vertex}-{slot}") for slot in range(2)]
        for vertex in vertices
    }

    def run():
        return expander_sort(vertices, items, 2, engine=engine)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert is_globally_sorted(result.placement, vertices)
