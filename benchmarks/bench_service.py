"""E5: the serving layer — warm-cache batched routing vs cold per-query rebuilds.

The paper's tradeoff (Theorem 1.1) buys expensive preprocessing once and
amortizes it over many cheap queries.  This benchmark exercises exactly that
at the serving layer: a batch of permutation queries on the benchmark
expander, served warm through :class:`repro.service.RoutingService` (artifact
cached, zero additional preprocessing, queries fanned out over the worker
pool) against a cold sequential loop that rebuilds the full preprocessing for
every query — the way a service without the cache would behave.
"""

import time

from conftest import QUICK

from repro.analysis.experiments import shifted_destination
from repro.analysis.reporting import format_kv
from repro.core.router import ExpanderRouter
from repro.core.tokens import RoutingRequest
from repro.service import RoutingService

BATCH_QUERIES = 8 if QUICK else 32


def _batch_workloads(graph, queries):
    """One load-1 permutation instance per query, each with a different shift."""
    n = graph.number_of_nodes()
    return [
        [
            RoutingRequest(source=v, destination=shifted_destination(v, n, shift))
            for v in sorted(graph.nodes())
        ]
        for shift in range(1, queries + 1)
    ]


def test_service_warm_batch_amortizes_preprocessing(benchmark, bench_graph):
    workloads = _batch_workloads(bench_graph, BATCH_QUERIES)

    # Cold baseline: a fresh router — full preprocess included — per query.
    cold_start = time.perf_counter()
    cold_rounds = []
    for requests in workloads:
        router = ExpanderRouter(bench_graph, epsilon=0.5)
        router.preprocess()
        cold_rounds.append(router.route(requests).query_rounds)
    cold_seconds = time.perf_counter() - cold_start

    # Warm service: the artifact is cached once, then the batch reuses it.
    service = RoutingService(epsilon=0.5, max_workers=4)
    service.route(bench_graph, workloads[0])
    assert service.cache.stats.misses == 1

    def warm_batch():
        for requests in workloads:
            service.submit(bench_graph, requests)
        return service.route_batch()

    report = benchmark.pedantic(warm_batch, rounds=1, iterations=1)

    speedup = cold_seconds / report.wall_seconds
    print("\n[E5] warm-cache batch vs cold sequential rebuild loop")
    print(
        format_kv(
            {
                "n": bench_graph.number_of_nodes(),
                "batch_queries": BATCH_QUERIES,
                "cold_seconds": cold_seconds,
                "warm_seconds": report.wall_seconds,
                "speedup": speedup,
                "cache_hit_rate": report.cache_hit_rate,
                "preprocess_rounds_incurred": report.preprocess_rounds_incurred,
                "preprocess_rounds_reused": report.preprocess_rounds_reused,
                "total_query_rounds": report.total_query_rounds,
            },
            title="E5",
        )
    )

    assert report.query_count == BATCH_QUERIES
    assert report.all_delivered
    # The whole batch is served from the cached artifact: no new preprocessing.
    assert report.cache_hits == BATCH_QUERIES
    assert report.preprocess_rounds_incurred == 0
    assert report.preprocess_rounds_reused > 0
    # Batched results are the same instances the cold loop solved, so the
    # round counts must agree query by query (routing is deterministic).
    warm_rounds = [
        result.outcome.query_rounds
        for result in sorted(report.results, key=lambda result: result.query_id)
    ]
    assert warm_rounds == cold_rounds
    # The amortization headline: >= 3x wall-clock over rebuild-per-query.
    assert speedup >= 3.0
