"""E1 (Theorem 1.1): preprocessing/query tradeoff.

Regenerates the tradeoff table: for each epsilon, the preprocessing round
cost, the per-query round cost, and the amortized cost over a batch of
queries.  The paper's claim: queries cost ``L * log^{O(1/eps)} n`` rounds
(cheaper for larger epsilon) while preprocessing costs
``n^{O(eps)} + log^{O(1/eps)} n`` (more expensive for larger epsilon), and
reusing the preprocessing across queries beats rebuilding it per query.
"""

import pytest

from repro.analysis.experiments import permutation_requests
from repro.analysis.reporting import format_table
from repro.core.router import ExpanderRouter
from repro.graphs.generators import random_regular_expander

EPSILONS = [0.34, 0.5, 0.7]
QUERIES = 3


def _measure(epsilon: float) -> dict:
    graph = random_regular_expander(128, degree=8, seed=1)
    router = ExpanderRouter(graph, epsilon=epsilon)
    summary = router.preprocess()
    requests = permutation_requests(graph, load=2)
    query_rounds = [router.route(requests).query_rounds for _ in range(QUERIES)]
    mean_query = sum(query_rounds) / len(query_rounds)
    return {
        "epsilon": epsilon,
        "preprocess_rounds": summary.rounds,
        "query_rounds": mean_query,
        "amortized_with_reuse": summary.rounds / QUERIES + mean_query,
        "rebuild_per_query": summary.rounds + mean_query,
        "levels": summary.hierarchy_levels,
    }


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_tradeoff_point(benchmark, epsilon):
    row = benchmark.pedantic(_measure, args=(epsilon,), rounds=1, iterations=1)
    # Reusing preprocessing always beats rebuilding it for every query.
    assert row["amortized_with_reuse"] < row["rebuild_per_query"]


def test_tradeoff_direction_across_epsilon(benchmark):
    def run():
        return [_measure(epsilon) for epsilon in EPSILONS]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[E1] preprocessing/query tradeoff (n=128, L=2)")
    print(format_table(rows))
    # Shape: the largest epsilon has the cheapest queries of the sweep.
    cheapest_query = min(rows, key=lambda row: row["query_rounds"])
    assert cheapest_query["epsilon"] == max(EPSILONS)
    # Between the two epsilons with the same hierarchy depth (where the n^eps
    # component of preprocessing is comparable), raising epsilon buys cheaper
    # queries at the price of more preprocessing — the Theorem 1.1 direction.
    # (At small n a *smaller* epsilon can still have the globally largest
    # preprocessing because its deeper hierarchy dominates; EXPERIMENTS.md
    # discusses this small-scale effect.)
    same_depth = [row for row in rows if row["levels"] == rows[-1]["levels"]]
    if len(same_depth) >= 2:
        lower, higher = same_depth[0], same_depth[-1]
        assert higher["preprocess_rounds"] > lower["preprocess_rounds"]
        assert higher["query_rounds"] <= lower["query_rounds"]
