"""E6: all registered backends x workload shapes, as one JSON-emitting comparison.

The paper's headline claim is a comparison — deterministic expander routing
(Theorem 1.1) against a CS20-style rebuild-per-query strategy and the
randomized GKS baseline — and this benchmark runs it end to end through the
serving layer: every registered backend routes the same workload shapes
(permutation, hot-spot, adversarial bipartite, multi-token) on the benchmark
expander via :meth:`RoutingService.compare_batch`, and one JSON results row
per (backend, workload) is written to ``bench-backends.json`` (uploaded as a
CI artifact by the bench-smoke job).

The warm-repeat assertion is the amortization headline: on a second
comparison over the same graph, the deterministic backend preprocesses
*nothing* — its artifact is served from the cache — while the
rebuild-per-query comparator pays its full rebuild inside every query's
rounds, every time.
"""

import json
from pathlib import Path

from conftest import QUICK

from repro.analysis.reporting import format_table
from repro.backends import available_backends
from repro.graphs.generators import random_regular_expander
from repro.service import RoutingService
from repro.workloads import make_workload

BENCH_N = 64 if QUICK else 128
WORKLOAD_SPECS = [
    ("permutation", {"shift": 3}),
    ("hotspot", {"load": 2, "seed": 1}),
    ("adversarial-bipartite", {"seed": 2}),
    ("multi-token", {"load": 2}),
]
RESULTS_PATH = Path(__file__).resolve().parent.parent / "bench-backends.json"


def test_backend_workload_matrix(benchmark):
    graph = random_regular_expander(BENCH_N, degree=8, seed=1)
    workloads = [make_workload(name, graph, **params) for name, params in WORKLOAD_SPECS]
    service = RoutingService(epsilon=0.5, max_workers=4)

    def compare():
        return service.compare_batch(graph, workloads)

    cold = benchmark.pedantic(compare, rounds=1, iterations=1)
    warm = service.compare_batch(graph, workloads)

    rows = []
    for entry in warm.entries:
        row = entry.as_row()
        row["n"] = BENCH_N
        row["quick"] = QUICK
        rows.append(row)
    RESULTS_PATH.write_text(json.dumps(rows, indent=2, default=str) + "\n")

    print(f"\n[E6] backends x workloads on n={BENCH_N} (cold batch, then warm repeat)")
    print(warm.render())
    print(f"wrote {len(rows)} rows to {RESULTS_PATH.name}")

    assert set(warm.backends) == set(available_backends())
    assert len(rows) == len(available_backends()) * len(WORKLOAD_SPECS)
    assert cold.all_delivered and warm.all_delivered

    # The tradeoff, measured: the cold comparison pays the deterministic
    # preprocessing once; the warm repeat reuses the cached artifact and
    # incurs zero additional preprocessing rounds.
    assert cold.batch_reports["deterministic"].preprocess_rounds_incurred > 0
    assert warm.batch_reports["deterministic"].preprocess_rounds_incurred == 0
    assert warm.batch_reports["deterministic"].preprocess_rounds_reused > 0

    # The rebuild-per-query comparator has no reusable state: its per-query
    # rounds dwarf the deterministic backend's on every workload.
    pivot = {row["workload"]: row for row in warm.pivot("query_rounds")}
    for workload in pivot.values():
        assert workload["rebuild-per-query"] > workload["deterministic"]
    print(format_table(warm.summary_rows()))
