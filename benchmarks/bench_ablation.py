"""E11: ablations of the design choices DESIGN.md calls out.

Three ablations:

* shuffler/preprocessing reuse vs rebuild-per-query (the feature CS20 lacks);
* sorting-network choice: Batcher odd-even vs bitonic vs odd-even transposition
  (the "AKS substitute" decision — depth drives the leaf/query polylog);
* dummy-token multiplicity in Task 3 (the paper's 2L vs an undersized 1L),
  measured by how often the merge needs the fallback placement.
"""

import pytest

from repro.analysis.experiments import permutation_requests
from repro.analysis.reporting import format_table
from repro.baselines.cs20_model import RebuildPerQueryRouter
from repro.core.cost import CostLedger
from repro.core.merge import solve_task3
from repro.core.router import ExpanderRouter
from repro.core.tokens import Token
from repro.cutmatching.game import build_shuffler
from repro.graphs.generators import random_regular_expander
from repro.hierarchy.builder import HierarchyParameters, build_hierarchy
from repro.sorting.networks import batcher_odd_even_network, bitonic_network, insertion_network


def test_ablation_reuse_vs_rebuild(benchmark):
    def run():
        graph = random_regular_expander(96, degree=8, seed=7)
        requests = permutation_requests(graph, load=2)
        ours = ExpanderRouter(graph, epsilon=0.5)
        summary = ours.preprocess()
        reuse_rounds = ours.route(requests).query_rounds
        rebuild_rounds = RebuildPerQueryRouter(graph, epsilon=0.5).route(requests).query_rounds
        return {
            "preprocess_rounds": summary.rounds,
            "query_rounds_with_reuse": reuse_rounds,
            "query_rounds_rebuild_per_query": rebuild_rounds,
            "speedup": rebuild_rounds / max(reuse_rounds, 1),
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[E11a] preprocessing reuse vs rebuild-per-query")
    print(format_table([row]))
    assert row["query_rounds_with_reuse"] < row["query_rounds_rebuild_per_query"]


def test_ablation_sorting_network_depth(benchmark):
    def run():
        rows = []
        for name, factory in (
            ("batcher", batcher_odd_even_network),
            ("bitonic", bitonic_network),
            ("odd-even-transposition", insertion_network),
        ):
            network = factory(256)
            rows.append(
                {"network": name, "depth": network.depth, "comparators": network.comparator_count}
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[E11b] sorting-network ablation (n=256)")
    print(format_table(rows))
    depths = {row["network"]: row["depth"] for row in rows}
    assert depths["batcher"] < depths["odd-even-transposition"]


@pytest.mark.parametrize("dummies_per_vertex_factor", [1, 2])
def test_ablation_dummy_token_multiplicity(benchmark, dummies_per_vertex_factor):
    def run():
        graph = random_regular_expander(128, degree=8, seed=1)
        decomposition = build_hierarchy(graph, HierarchyParameters(epsilon=0.5))
        root = decomposition.root
        parts = [sorted(part.vertices) for part in root.parts]
        root.shuffler = build_shuffler(root.virtual_graph, parts, psi=0.1)
        load = 2
        t = len(root.parts)
        tokens = []
        for index, vertex in enumerate(sorted(root.vertices)):
            for slot in range(load):
                token = Token(token_id=index * load + slot, source=vertex, destination=vertex)
                token.part_mark = (vertex * 7 + slot * 13) % t
                tokens.append(token)
        result = solve_task3(
            root,
            tokens,
            load=load,
            ledger=CostLedger(),
            dummies_per_vertex=dummies_per_vertex_factor * load,
        )
        return {
            "dummies_per_vertex": dummies_per_vertex_factor * load,
            "fallback_assignments": result.fallback_assignments,
            "tokens": len(tokens),
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[E11c] dummy-token multiplicity ablation")
    print(format_table([row]))
    if row["dummies_per_vertex"] >= 4:
        # The paper's 2L dummies make fallbacks (essentially) disappear.
        assert row["fallback_assignments"] <= row["tokens"] * 0.05
