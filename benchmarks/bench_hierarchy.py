"""E9 (Property 3.1 / Theorem 3.2): hierarchical decomposition quality.

Regenerates the decomposition-quality table: number of levels (O(1/eps)),
part-size balance, rho_best, flatten-embedding quality, and build rounds, for
an (n, epsilon) sweep.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.graphs.generators import random_regular_expander
from repro.hierarchy.builder import HierarchyParameters, build_hierarchy

from conftest import quick_points

POINTS = quick_points([(128, 0.34), (128, 0.5), (128, 0.7), (256, 0.5)])


def _measure(n: int, epsilon: float) -> dict:
    graph = random_regular_expander(n, degree=8, seed=1)
    decomposition = build_hierarchy(graph, HierarchyParameters(epsilon=epsilon))
    root = decomposition.root
    k = max(1, len(root.parts))
    part_sizes = [part.size for part in root.parts] or [n]
    balance_ok = all(
        n / (3 * k) - 1 <= size <= 6 * n / k + 1 for size in part_sizes
    )
    worst_flatten = max(node.flatten_quality() for node in decomposition.all_nodes())
    return {
        "n": n,
        "epsilon": epsilon,
        "levels": decomposition.levels(),
        "level_bound_1_over_eps": int(1 / epsilon) + 2,
        "root_parts": k,
        "part_size_balance_ok": balance_ok,
        "rho_best": decomposition.rho_best(),
        "worst_flatten_quality": worst_flatten,
        "build_rounds": decomposition.build_rounds,
    }


def test_hierarchy_quality_sweep(benchmark):
    def run():
        return [_measure(n, epsilon) for n, epsilon in POINTS]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[E9] hierarchical decomposition quality")
    print(format_table(rows))
    for row in rows:
        assert row["levels"] <= row["level_bound_1_over_eps"] + 1
        assert row["part_size_balance_ok"]
        assert row["rho_best"] <= 2 ** (2 / row["epsilon"])


@pytest.mark.parametrize("n,epsilon", POINTS)
def test_hierarchy_single_point(benchmark, n, epsilon):
    row = benchmark.pedantic(_measure, args=(n, epsilon), rounds=1, iterations=1)
    assert row["part_size_balance_ok"]
