"""E3 (Lemma 5.5 / B.5): shuffler construction — iteration count and potential decay.

Regenerates the series: for growing n, the number of cut-matching iterations
until the potential drops below ``1/(9 t^3)`` and the per-iteration decay
factor.  The paper's claim: O(log n) iterations with geometric potential decay.
"""

import math

import pytest

from repro.analysis.reporting import format_table
from repro.cutmatching.game import CutMatchingGame
from repro.graphs.generators import random_regular_expander
from repro.hierarchy.builder import HierarchyParameters, build_hierarchy

from conftest import quick_sizes

SIZES = quick_sizes([64, 128, 256])


def _measure(n: int) -> dict:
    graph = random_regular_expander(n, degree=8, seed=1)
    decomposition = build_hierarchy(graph, HierarchyParameters(epsilon=0.5))
    parts = [sorted(part.vertices) for part in decomposition.root.parts]
    outcome = CutMatchingGame(decomposition.root.virtual_graph, parts, psi=0.1).play()
    history = outcome.potential_history
    decay_factors = [
        later / earlier for earlier, later in zip(history, history[1:]) if earlier > 0
    ]
    mean_decay = sum(decay_factors) / len(decay_factors) if decay_factors else 0.0
    return {
        "n": n,
        "parts": len(parts),
        "iterations": outcome.iterations,
        "iterations_over_log_n": outcome.iterations / math.log2(n),
        "mean_decay_factor": mean_decay,
        "final_potential": outcome.shuffler.final_potential,
        "mixed": outcome.shuffler.verify_mixing(len(parts)),
        "quality": outcome.shuffler.quality,
        "build_rounds": outcome.rounds,
    }


def test_shuffler_construction_scaling(benchmark):
    def run():
        return [_measure(n) for n in SIZES]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[E3] shuffler construction (cut-matching game)")
    print(format_table(rows))
    for row in rows:
        assert row["mixed"]
        # O(log n) iterations with a modest constant.
        assert row["iterations"] <= 16 * math.log2(row["n"]) + 16
        # Geometric decay on average.
        assert row["mean_decay_factor"] < 0.95


@pytest.mark.parametrize("n", SIZES)
def test_shuffler_single_size(benchmark, n):
    row = benchmark.pedantic(_measure, args=(n,), rounds=1, iterations=1)
    assert row["mixed"]
